//! The wire protocol: line-oriented text over TCP.
//!
//! Requests are single lines; the first word is the command, the rest is
//! the argument:
//!
//! ```text
//! FACT p(1, 2).          ingest one ground fact
//! LOAD path/to/file.dl   merge a file's rules and facts
//! QUERY ?- a(X, _).      evaluate a query (fresh by default)
//! QUERY staleness=50 ?- a(X, _).   accept answers up to 50 ms stale
//! QUERY any ?- a(X, _).  accept any published answer, however stale
//! STATS                  one-line JSON server statistics
//! TRACE                  one-line JSON trace of the last query
//! METRICS [JSON]         telemetry scrape (Prometheus text, or JSON)
//! SHUTDOWN               stop the server
//! ```
//!
//! Since **protocol version 4**, `QUERY` takes an optional leading
//! *consistency mode* word — `fresh` (the default; answers reflect every
//! acknowledged ingest), `staleness=<ms>` (answers may lag ingestion by at
//! most that many milliseconds), or `any` (serve whatever frontier is
//! published). `staleness=0` is exactly `fresh`. A word that is none of
//! these is treated as the start of the query text, so v3 clients are
//! unaffected. Query responses carry `frontier=<version>` and
//! `staleness_us=<upper bound>` header pairs; a server that cannot meet
//! the requested bound without more work than the client is willing to
//! wait for answers `ERR stale <bound_ms> <message>` (see
//! [`Response::err_stale`]).
//!
//! Responses are a header line followed by zero or more payload lines:
//!
//! ```text
//! OK <nlines>[ key=value]...
//! <payload line 1>
//! ...
//! <payload line nlines>
//! ```
//!
//! or, on failure, a single line
//!
//! ```text
//! ERR [<code>] <message>
//! ```
//!
//! Since **protocol version 2**, resource-governance failures carry a
//! machine-readable code word right after `ERR`: `busy` (admission control
//! shed the request), `deadline` (the query ran past its wall-clock
//! deadline), `budget` (the query derived more facts than allowed),
//! `shutdown` (the server is draining), and `internal` (a handler panic
//! was contained). Parsing stays backward compatible in both directions: a
//! v1 client sees the code as the first word of the message, and a v2
//! client reading a v1 server simply finds no known code word and treats
//! the whole line as the message. Plain errors (parse errors arrive as
//! `ERR <origin>:<line>:<col>: <message>`) remain uncoded. The connection
//! stays usable after any `ERR`. `QUERY` payload lines are byte-identical
//! to what `xdl run` prints for the same program and facts.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Protocol version implemented by this build. Version 2 added coded
/// `ERR` responses (`busy`/`deadline`/`budget`/`shutdown`/`internal`);
/// version 3 added the `METRICS` verb (Prometheus text exposition, or the
/// JSON registry readout with `METRICS JSON`); version 4 added `QUERY`
/// consistency modes (`fresh` | `staleness=<ms>` | `any`), the
/// `frontier=`/`staleness_us=` response headers, and the `stale` error
/// code. `STATS` reports the version as `"proto"`. All additions are
/// backward compatible: old clients never send the new words, and the
/// new `ERR stale` line reads as an ordinary uncoded message on v3.
pub const PROTOCOL_VERSION: u32 = 4;

/// Machine-readable error class carried by a coded `ERR` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Admission control shed the request (connection or query capacity).
    Busy,
    /// The query ran past its wall-clock deadline.
    Deadline,
    /// The query exceeded its derived-fact budget (or iteration cap).
    Budget,
    /// Bound-aware admission refused the query before evaluation: the
    /// static derivation bound, evaluated against current EDB
    /// cardinalities, exceeds the configured fact budget.
    Bound,
    /// The server is draining for shutdown.
    Shutdown,
    /// The requested staleness bound cannot be met without a synchronous
    /// catch-up the backpressure policy refused; the message leads with
    /// the best staleness bound currently available, in milliseconds
    /// (v4; see [`Response::err_stale`]).
    Stale,
    /// A handler panic was contained; the request failed, the server lives.
    Internal,
}

impl ErrCode {
    /// The code word on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Busy => "busy",
            ErrCode::Deadline => "deadline",
            ErrCode::Budget => "budget",
            ErrCode::Bound => "bound",
            ErrCode::Shutdown => "shutdown",
            ErrCode::Stale => "stale",
            ErrCode::Internal => "internal",
        }
    }

    /// Parse a code word (used when reading responses).
    pub fn parse(word: &str) -> Option<ErrCode> {
        match word {
            "busy" => Some(ErrCode::Busy),
            "deadline" => Some(ErrCode::Deadline),
            "budget" => Some(ErrCode::Budget),
            "bound" => Some(ErrCode::Bound),
            "shutdown" => Some(ErrCode::Shutdown),
            "stale" => Some(ErrCode::Stale),
            "internal" => Some(ErrCode::Internal),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The consistency mode a `QUERY` is issued under (protocol v4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Answers must reflect every acknowledged ingest — byte-identical to
    /// pre-v4 behavior. The default, and what `staleness=0` normalizes to.
    #[default]
    Fresh,
    /// Answers may lag acknowledged ingestion by at most this many
    /// milliseconds of wall time (the server reports its actual upper
    /// bound as `staleness_us=` and refuses with `ERR stale` rather than
    /// silently exceeding the budget).
    Bounded(u64),
    /// Serve whatever frontier is published, however stale.
    Any,
}

impl Consistency {
    /// Parse one mode word. `None` for anything else (the word then
    /// belongs to the query text — that is what keeps v3 clients working).
    /// A malformed `staleness=` value is an error, not query text.
    fn parse_word(word: &str) -> Option<Result<Consistency, String>> {
        if word.eq_ignore_ascii_case("fresh") {
            return Some(Ok(Consistency::Fresh));
        }
        if word.eq_ignore_ascii_case("any") {
            return Some(Ok(Consistency::Any));
        }
        if let Some(v) = word.strip_prefix("staleness=") {
            return Some(match v.parse::<u64>() {
                Ok(0) => Ok(Consistency::Fresh),
                Ok(ms) => Ok(Consistency::Bounded(ms)),
                Err(_) => Err(format!(
                    "staleness takes a whole number of milliseconds, got '{v}'"
                )),
            });
        }
        None
    }

    /// Split an optional leading mode word off a `QUERY` argument.
    fn split_leading(rest: &str) -> Result<(Consistency, &str), String> {
        let (word, tail) = match rest.split_once(char::is_whitespace) {
            Some((w, t)) => (w, t.trim()),
            None => (rest, ""),
        };
        match Consistency::parse_word(word) {
            Some(Ok(mode)) => Ok((mode, tail)),
            Some(Err(e)) => Err(e),
            None => Ok((Consistency::Fresh, rest)),
        }
    }
}

impl std::fmt::Display for Consistency {
    /// The wire word (`fresh` / `staleness=<ms>` / `any`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Fresh => f.write_str("fresh"),
            Consistency::Bounded(ms) => write!(f, "staleness={ms}"),
            Consistency::Any => f.write_str("any"),
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `FACT <ground atom>.`
    Fact(String),
    /// `LOAD <path>`
    Load(String),
    /// `QUERY [fresh|staleness=<ms>|any] ?- <atom>.`
    Query {
        /// The query text (`?- <atom>.`).
        text: String,
        /// The requested consistency mode (v4; defaults to fresh).
        consistency: Consistency,
    },
    /// `STATS`
    Stats,
    /// `TRACE`
    Trace,
    /// `METRICS` (Prometheus text) / `METRICS JSON` (registry JSON).
    Metrics {
        /// Emit the JSON readout instead of Prometheus text exposition.
        json: bool,
    },
    /// `SHUTDOWN`
    Shutdown,
}

impl Request {
    /// A fresh-consistency `QUERY` — the pre-v4 shape.
    pub fn query(text: impl Into<String>) -> Request {
        Request::Query {
            text: text.into(),
            consistency: Consistency::Fresh,
        }
    }

    /// Parse one request line. Returns an error message suitable for an
    /// `ERR` reply.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd.to_ascii_uppercase().as_str() {
            "FACT" if !rest.is_empty() => Ok(Request::Fact(rest.to_string())),
            "FACT" => Err("FACT takes a ground atom, e.g. FACT p(1, 2).".into()),
            "LOAD" if !rest.is_empty() => Ok(Request::Load(rest.to_string())),
            "LOAD" => Err("LOAD takes a file path".into()),
            "QUERY" if !rest.is_empty() => {
                let (consistency, text) = Consistency::split_leading(rest)?;
                if text.is_empty() {
                    return Err("QUERY takes a query, e.g. QUERY ?- a(X, _).".into());
                }
                Ok(Request::Query {
                    text: text.to_string(),
                    consistency,
                })
            }
            "QUERY" => Err("QUERY takes a query, e.g. QUERY ?- a(X, _).".into()),
            "STATS" => Ok(Request::Stats),
            "TRACE" => Ok(Request::Trace),
            "METRICS" if rest.is_empty() => Ok(Request::Metrics { json: false }),
            "METRICS" if rest.eq_ignore_ascii_case("json") => Ok(Request::Metrics { json: true }),
            "METRICS" => Err("METRICS takes no argument, or JSON".into()),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown command '{other}' (expected FACT, LOAD, QUERY, STATS, TRACE, METRICS \
                 or SHUTDOWN)"
            )),
        }
    }
}

/// A response: either `Ok` with key=value metadata and payload lines, or
/// `Err` with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Whether the header was `OK`.
    pub ok: bool,
    /// The `ERR` message (empty for `OK` responses).
    pub error: String,
    /// The machine-readable error class, when the `ERR` line carried a
    /// protocol-v2 code word. `None` for `OK` responses and uncoded errors.
    pub code: Option<ErrCode>,
    /// `key=value` pairs from the `OK` header, in order.
    pub info: Vec<(String, String)>,
    /// Payload lines (without trailing newlines).
    pub payload: Vec<String>,
}

impl Response {
    /// An `OK` response.
    pub fn ok() -> Response {
        Response {
            ok: true,
            error: String::new(),
            code: None,
            info: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// An uncoded `ERR` response.
    pub fn err(message: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: message.into(),
            code: None,
            info: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// A coded `ERR` response (`ERR <code> <message>` on the wire).
    pub fn err_code(code: ErrCode, message: impl Into<String>) -> Response {
        Response {
            code: Some(code),
            ..Response::err(message)
        }
    }

    /// A staleness refusal: `ERR stale <bound_ms> <message>` on the wire.
    /// `bound_ms` is the best upper staleness bound the server could have
    /// served at, in milliseconds — the client can retry with a looser
    /// budget or `fresh`. A v3 reader sees the whole line as an uncoded
    /// message, which still leads with the bound.
    pub fn err_stale(bound_ms: u64, message: impl std::fmt::Display) -> Response {
        Response::err_code(ErrCode::Stale, format!("{bound_ms} {message}"))
    }

    /// The staleness bound of an `ERR stale` response, in milliseconds.
    /// `None` unless this is a stale refusal with a well-formed bound.
    pub fn stale_bound_ms(&self) -> Option<u64> {
        if self.code != Some(ErrCode::Stale) {
            return None;
        }
        self.error.split_whitespace().next()?.parse().ok()
    }

    /// Attach a `key=value` header pair (builder style). Keys and values
    /// must not contain whitespace; values are rendered verbatim.
    pub fn with_info(mut self, key: &str, value: impl ToString) -> Response {
        self.info.push((key.to_string(), value.to_string()));
        self
    }

    /// Attach payload lines from a (possibly multi-line) string. A trailing
    /// newline does not produce an empty final line.
    pub fn with_payload_text(mut self, text: &str) -> Response {
        self.payload.extend(text.lines().map(|l| l.to_string()));
        self
    }

    /// Look up a header value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.info
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The payload re-joined with newlines, with a trailing newline when
    /// non-empty — the inverse of [`Response::with_payload_text`] for texts
    /// that ended in `\n`.
    pub fn payload_text(&self) -> String {
        if self.payload.is_empty() {
            String::new()
        } else {
            let mut s = self.payload.join("\n");
            s.push('\n');
            s
        }
    }

    /// Serialize onto a writer (header + payload lines).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        if self.ok {
            write!(w, "OK {}", self.payload.len())?;
            for (k, v) in &self.info {
                write!(w, " {k}={v}")?;
            }
            writeln!(w)?;
            for line in &self.payload {
                writeln!(w, "{line}")?;
            }
        } else {
            // ERR is always a single line; flatten any embedded newlines.
            let msg = self.error.replace('\n', " / ");
            match self.code {
                Some(code) => writeln!(w, "ERR {code} {msg}")?,
                None => writeln!(w, "ERR {msg}")?,
            }
        }
        w.flush()
    }

    /// Read one response from a buffered reader (header line + announced
    /// payload lines). Returns `None` at EOF before a header.
    pub fn read_from(r: &mut impl BufRead) -> std::io::Result<Option<Response>> {
        let mut header = String::new();
        if r.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if let Some(msg) = header.strip_prefix("ERR ") {
            // v2: a known code word right after ERR classifies the error.
            // Anything else (including v1 servers) is an uncoded message.
            if let Some((word, rest)) = msg.split_once(' ') {
                if let Some(code) = ErrCode::parse(word) {
                    return Ok(Some(Response::err_code(code, rest)));
                }
            }
            return Ok(Some(Response::err(msg)));
        }
        let Some(rest) = header.strip_prefix("OK ") else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response header: {header:?}"),
            ));
        };
        let mut words = rest.split_whitespace();
        let n: usize = words.next().and_then(|w| w.parse().ok()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("missing payload count in header: {header:?}"),
            )
        })?;
        let mut resp = Response::ok();
        for w in words {
            if let Some((k, v)) = w.split_once('=') {
                resp.info.push((k.to_string(), v.to_string()));
            }
        }
        for _ in 0..n {
            let mut line = String::new();
            if r.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-payload",
                ));
            }
            resp.payload
                .push(line.trim_end_matches(['\r', '\n']).to_string());
        }
        Ok(Some(resp))
    }

    /// Header pairs as a map (for tests and stats display).
    pub fn info_map(&self) -> BTreeMap<String, String> {
        self.info.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        assert_eq!(
            Request::parse("FACT p(1, 2)."),
            Ok(Request::Fact("p(1, 2).".into()))
        );
        assert_eq!(
            Request::parse("  query ?- a(X, _). "),
            Ok(Request::query("?- a(X, _)."))
        );
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("shutdown"), Ok(Request::Shutdown));
        assert_eq!(
            Request::parse("METRICS"),
            Ok(Request::Metrics { json: false })
        );
        assert_eq!(
            Request::parse("metrics json"),
            Ok(Request::Metrics { json: true })
        );
        assert!(Request::parse("METRICS xml").is_err());
        assert!(Request::parse("FACT").is_err());
        assert!(Request::parse("NOPE x").is_err());
    }

    #[test]
    fn query_consistency_modes_parse_and_default_to_fresh() {
        // v4 mode words.
        assert_eq!(
            Request::parse("QUERY staleness=50 ?- a(X)."),
            Ok(Request::Query {
                text: "?- a(X).".into(),
                consistency: Consistency::Bounded(50),
            })
        );
        assert_eq!(
            Request::parse("QUERY any ?- a(X)."),
            Ok(Request::Query {
                text: "?- a(X).".into(),
                consistency: Consistency::Any,
            })
        );
        assert_eq!(
            Request::parse("QUERY FRESH ?- a(X)."),
            Ok(Request::query("?- a(X).")),
        );
        // staleness=0 normalizes to fresh: byte-identity is a mode, not a
        // special case downstream.
        assert_eq!(
            Request::parse("QUERY staleness=0 ?- a(X)."),
            Ok(Request::query("?- a(X).")),
        );
        // A word that is no mode stays part of the query (v3 compat).
        assert_eq!(
            Request::parse("QUERY ?- a(X, _)."),
            Ok(Request::query("?- a(X, _).")),
        );
        // Malformed bounds and mode-only lines are errors, not queries.
        assert!(Request::parse("QUERY staleness=abc ?- a(X).").is_err());
        assert!(Request::parse("QUERY any").is_err());
        // Display renders the wire words back.
        assert_eq!(Consistency::Bounded(7).to_string(), "staleness=7");
        assert_eq!(Consistency::Fresh.to_string(), "fresh");
        assert_eq!(Consistency::Any.to_string(), "any");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok()
            .with_info("cache", "hit")
            .with_info("answers", 3)
            .with_payload_text("X\n1\n2\n3\n");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf),
            "OK 4 cache=hit answers=3\nX\n1\n2\n3\n"
        );
        let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.get("cache"), Some("hit"));
        assert_eq!(back.payload_text(), "X\n1\n2\n3\n");
    }

    #[test]
    fn err_roundtrip_flattens_newlines() {
        let resp = Response::err("file.dl:3:7: expected ')'\nsecond");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf),
            "ERR file.dl:3:7: expected ')' / second\n"
        );
        let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert!(!back.ok);
        assert_eq!(back.error, "file.dl:3:7: expected ')' / second");
    }

    #[test]
    fn read_from_eof_is_none() {
        let empty: &[u8] = b"";
        assert_eq!(Response::read_from(&mut &*empty).unwrap(), None);
    }

    #[test]
    fn coded_err_roundtrip() {
        for (code, word) in [
            (ErrCode::Busy, "busy"),
            (ErrCode::Deadline, "deadline"),
            (ErrCode::Budget, "budget"),
            (ErrCode::Bound, "bound"),
            (ErrCode::Shutdown, "shutdown"),
            (ErrCode::Stale, "stale"),
            (ErrCode::Internal, "internal"),
        ] {
            let resp = Response::err_code(code, "details here");
            let mut buf = Vec::new();
            resp.write_to(&mut buf).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&buf),
                format!("ERR {word} details here\n")
            );
            let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
            assert!(!back.ok);
            assert_eq!(back.code, Some(code));
            assert_eq!(back.error, "details here");
        }
    }

    #[test]
    fn stale_refusal_carries_its_bound_and_reads_as_text_on_v3() {
        let resp = Response::err_stale(120, "drain in progress, retry or loosen budget");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf),
            "ERR stale 120 drain in progress, retry or loosen budget\n"
        );
        let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back.code, Some(ErrCode::Stale));
        assert_eq!(back.stale_bound_ms(), Some(120));
        // A v3 reader has no "stale" code word: the whole text after ERR
        // is the message, still leading with the bound.
        assert!(String::from_utf8_lossy(&buf).starts_with("ERR stale 120 "));
        // Non-stale responses never report a bound.
        assert_eq!(Response::err("stale 120 x").stale_bound_ms(), None);
    }

    #[test]
    fn uncoded_err_stays_backward_compatible() {
        // A v1-style error whose first word is not a code word: the whole
        // line is the message and no code is attached.
        let wire = b"ERR query:1:9: expected ')'\n";
        let back = Response::read_from(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(back.code, None);
        assert_eq!(back.error, "query:1:9: expected ')'");
        // A coded error read by a v1 client is still a readable message —
        // the code word leads the text (nothing to assert mechanically
        // beyond the wire shape, covered above).
    }
}

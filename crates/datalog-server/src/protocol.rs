//! The wire protocol: line-oriented text over TCP.
//!
//! Requests are single lines; the first word is the command, the rest is
//! the argument:
//!
//! ```text
//! FACT p(1, 2).          ingest one ground fact
//! LOAD path/to/file.dl   merge a file's rules and facts
//! QUERY ?- a(X, _).      evaluate a query
//! STATS                  one-line JSON server statistics
//! TRACE                  one-line JSON trace of the last query
//! METRICS [JSON]         telemetry scrape (Prometheus text, or JSON)
//! SHUTDOWN               stop the server
//! ```
//!
//! Responses are a header line followed by zero or more payload lines:
//!
//! ```text
//! OK <nlines>[ key=value]...
//! <payload line 1>
//! ...
//! <payload line nlines>
//! ```
//!
//! or, on failure, a single line
//!
//! ```text
//! ERR [<code>] <message>
//! ```
//!
//! Since **protocol version 2**, resource-governance failures carry a
//! machine-readable code word right after `ERR`: `busy` (admission control
//! shed the request), `deadline` (the query ran past its wall-clock
//! deadline), `budget` (the query derived more facts than allowed),
//! `shutdown` (the server is draining), and `internal` (a handler panic
//! was contained). Parsing stays backward compatible in both directions: a
//! v1 client sees the code as the first word of the message, and a v2
//! client reading a v1 server simply finds no known code word and treats
//! the whole line as the message. Plain errors (parse errors arrive as
//! `ERR <origin>:<line>:<col>: <message>`) remain uncoded. The connection
//! stays usable after any `ERR`. `QUERY` payload lines are byte-identical
//! to what `xdl run` prints for the same program and facts.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Protocol version implemented by this build. Version 2 added coded
/// `ERR` responses (`busy`/`deadline`/`budget`/`shutdown`/`internal`);
/// version 3 added the `METRICS` verb (Prometheus text exposition, or the
/// JSON registry readout with `METRICS JSON`). `STATS` reports the
/// version as `"proto"`. Both additions are backward compatible: old
/// clients simply never send the new verb.
pub const PROTOCOL_VERSION: u32 = 3;

/// Machine-readable error class carried by a coded `ERR` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Admission control shed the request (connection or query capacity).
    Busy,
    /// The query ran past its wall-clock deadline.
    Deadline,
    /// The query exceeded its derived-fact budget (or iteration cap).
    Budget,
    /// Bound-aware admission refused the query before evaluation: the
    /// static derivation bound, evaluated against current EDB
    /// cardinalities, exceeds the configured fact budget.
    Bound,
    /// The server is draining for shutdown.
    Shutdown,
    /// A handler panic was contained; the request failed, the server lives.
    Internal,
}

impl ErrCode {
    /// The code word on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Busy => "busy",
            ErrCode::Deadline => "deadline",
            ErrCode::Budget => "budget",
            ErrCode::Bound => "bound",
            ErrCode::Shutdown => "shutdown",
            ErrCode::Internal => "internal",
        }
    }

    /// Parse a code word (used when reading responses).
    pub fn parse(word: &str) -> Option<ErrCode> {
        match word {
            "busy" => Some(ErrCode::Busy),
            "deadline" => Some(ErrCode::Deadline),
            "budget" => Some(ErrCode::Budget),
            "bound" => Some(ErrCode::Bound),
            "shutdown" => Some(ErrCode::Shutdown),
            "internal" => Some(ErrCode::Internal),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `FACT <ground atom>.`
    Fact(String),
    /// `LOAD <path>`
    Load(String),
    /// `QUERY ?- <atom>.`
    Query(String),
    /// `STATS`
    Stats,
    /// `TRACE`
    Trace,
    /// `METRICS` (Prometheus text) / `METRICS JSON` (registry JSON).
    Metrics {
        /// Emit the JSON readout instead of Prometheus text exposition.
        json: bool,
    },
    /// `SHUTDOWN`
    Shutdown,
}

impl Request {
    /// Parse one request line. Returns an error message suitable for an
    /// `ERR` reply.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd.to_ascii_uppercase().as_str() {
            "FACT" if !rest.is_empty() => Ok(Request::Fact(rest.to_string())),
            "FACT" => Err("FACT takes a ground atom, e.g. FACT p(1, 2).".into()),
            "LOAD" if !rest.is_empty() => Ok(Request::Load(rest.to_string())),
            "LOAD" => Err("LOAD takes a file path".into()),
            "QUERY" if !rest.is_empty() => Ok(Request::Query(rest.to_string())),
            "QUERY" => Err("QUERY takes a query, e.g. QUERY ?- a(X, _).".into()),
            "STATS" => Ok(Request::Stats),
            "TRACE" => Ok(Request::Trace),
            "METRICS" if rest.is_empty() => Ok(Request::Metrics { json: false }),
            "METRICS" if rest.eq_ignore_ascii_case("json") => Ok(Request::Metrics { json: true }),
            "METRICS" => Err("METRICS takes no argument, or JSON".into()),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown command '{other}' (expected FACT, LOAD, QUERY, STATS, TRACE, METRICS \
                 or SHUTDOWN)"
            )),
        }
    }
}

/// A response: either `Ok` with key=value metadata and payload lines, or
/// `Err` with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Whether the header was `OK`.
    pub ok: bool,
    /// The `ERR` message (empty for `OK` responses).
    pub error: String,
    /// The machine-readable error class, when the `ERR` line carried a
    /// protocol-v2 code word. `None` for `OK` responses and uncoded errors.
    pub code: Option<ErrCode>,
    /// `key=value` pairs from the `OK` header, in order.
    pub info: Vec<(String, String)>,
    /// Payload lines (without trailing newlines).
    pub payload: Vec<String>,
}

impl Response {
    /// An `OK` response.
    pub fn ok() -> Response {
        Response {
            ok: true,
            error: String::new(),
            code: None,
            info: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// An uncoded `ERR` response.
    pub fn err(message: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: message.into(),
            code: None,
            info: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// A coded `ERR` response (`ERR <code> <message>` on the wire).
    pub fn err_code(code: ErrCode, message: impl Into<String>) -> Response {
        Response {
            code: Some(code),
            ..Response::err(message)
        }
    }

    /// Attach a `key=value` header pair (builder style). Keys and values
    /// must not contain whitespace; values are rendered verbatim.
    pub fn with_info(mut self, key: &str, value: impl ToString) -> Response {
        self.info.push((key.to_string(), value.to_string()));
        self
    }

    /// Attach payload lines from a (possibly multi-line) string. A trailing
    /// newline does not produce an empty final line.
    pub fn with_payload_text(mut self, text: &str) -> Response {
        self.payload.extend(text.lines().map(|l| l.to_string()));
        self
    }

    /// Look up a header value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.info
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The payload re-joined with newlines, with a trailing newline when
    /// non-empty — the inverse of [`Response::with_payload_text`] for texts
    /// that ended in `\n`.
    pub fn payload_text(&self) -> String {
        if self.payload.is_empty() {
            String::new()
        } else {
            let mut s = self.payload.join("\n");
            s.push('\n');
            s
        }
    }

    /// Serialize onto a writer (header + payload lines).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        if self.ok {
            write!(w, "OK {}", self.payload.len())?;
            for (k, v) in &self.info {
                write!(w, " {k}={v}")?;
            }
            writeln!(w)?;
            for line in &self.payload {
                writeln!(w, "{line}")?;
            }
        } else {
            // ERR is always a single line; flatten any embedded newlines.
            let msg = self.error.replace('\n', " / ");
            match self.code {
                Some(code) => writeln!(w, "ERR {code} {msg}")?,
                None => writeln!(w, "ERR {msg}")?,
            }
        }
        w.flush()
    }

    /// Read one response from a buffered reader (header line + announced
    /// payload lines). Returns `None` at EOF before a header.
    pub fn read_from(r: &mut impl BufRead) -> std::io::Result<Option<Response>> {
        let mut header = String::new();
        if r.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if let Some(msg) = header.strip_prefix("ERR ") {
            // v2: a known code word right after ERR classifies the error.
            // Anything else (including v1 servers) is an uncoded message.
            if let Some((word, rest)) = msg.split_once(' ') {
                if let Some(code) = ErrCode::parse(word) {
                    return Ok(Some(Response::err_code(code, rest)));
                }
            }
            return Ok(Some(Response::err(msg)));
        }
        let Some(rest) = header.strip_prefix("OK ") else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response header: {header:?}"),
            ));
        };
        let mut words = rest.split_whitespace();
        let n: usize = words.next().and_then(|w| w.parse().ok()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("missing payload count in header: {header:?}"),
            )
        })?;
        let mut resp = Response::ok();
        for w in words {
            if let Some((k, v)) = w.split_once('=') {
                resp.info.push((k.to_string(), v.to_string()));
            }
        }
        for _ in 0..n {
            let mut line = String::new();
            if r.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-payload",
                ));
            }
            resp.payload
                .push(line.trim_end_matches(['\r', '\n']).to_string());
        }
        Ok(Some(resp))
    }

    /// Header pairs as a map (for tests and stats display).
    pub fn info_map(&self) -> BTreeMap<String, String> {
        self.info.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        assert_eq!(
            Request::parse("FACT p(1, 2)."),
            Ok(Request::Fact("p(1, 2).".into()))
        );
        assert_eq!(
            Request::parse("  query ?- a(X, _). "),
            Ok(Request::Query("?- a(X, _).".into()))
        );
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("shutdown"), Ok(Request::Shutdown));
        assert_eq!(
            Request::parse("METRICS"),
            Ok(Request::Metrics { json: false })
        );
        assert_eq!(
            Request::parse("metrics json"),
            Ok(Request::Metrics { json: true })
        );
        assert!(Request::parse("METRICS xml").is_err());
        assert!(Request::parse("FACT").is_err());
        assert!(Request::parse("NOPE x").is_err());
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok()
            .with_info("cache", "hit")
            .with_info("answers", 3)
            .with_payload_text("X\n1\n2\n3\n");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf),
            "OK 4 cache=hit answers=3\nX\n1\n2\n3\n"
        );
        let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.get("cache"), Some("hit"));
        assert_eq!(back.payload_text(), "X\n1\n2\n3\n");
    }

    #[test]
    fn err_roundtrip_flattens_newlines() {
        let resp = Response::err("file.dl:3:7: expected ')'\nsecond");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&buf),
            "ERR file.dl:3:7: expected ')' / second\n"
        );
        let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
        assert!(!back.ok);
        assert_eq!(back.error, "file.dl:3:7: expected ')' / second");
    }

    #[test]
    fn read_from_eof_is_none() {
        let empty: &[u8] = b"";
        assert_eq!(Response::read_from(&mut &*empty).unwrap(), None);
    }

    #[test]
    fn coded_err_roundtrip() {
        for (code, word) in [
            (ErrCode::Busy, "busy"),
            (ErrCode::Deadline, "deadline"),
            (ErrCode::Budget, "budget"),
            (ErrCode::Bound, "bound"),
            (ErrCode::Shutdown, "shutdown"),
            (ErrCode::Internal, "internal"),
        ] {
            let resp = Response::err_code(code, "details here");
            let mut buf = Vec::new();
            resp.write_to(&mut buf).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&buf),
                format!("ERR {word} details here\n")
            );
            let back = Response::read_from(&mut buf.as_slice()).unwrap().unwrap();
            assert!(!back.ok);
            assert_eq!(back.code, Some(code));
            assert_eq!(back.error, "details here");
        }
    }

    #[test]
    fn uncoded_err_stays_backward_compatible() {
        // A v1-style error whose first word is not a code word: the whole
        // line is the message and no code is attached.
        let wire = b"ERR query:1:9: expected ')'\n";
        let back = Response::read_from(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(back.code, None);
        assert_eq!(back.error, "query:1:9: expected ')'");
        // A coded error read by a v1 client is still a readable message —
        // the code word leads the text (nothing to assert mechanically
        // beyond the wire shape, covered above).
    }
}

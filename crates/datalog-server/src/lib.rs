//! # datalog-server
//!
//! A long-lived query service for the existential-Datalog toolkit,
//! built only on `std::net` + `std::thread` (the build is offline and
//! dependency-free by design).
//!
//! The paper's observation that motivates this crate: the adorned,
//! optimized program `P^{e,ad}` (§2–§3 of *Optimizing Existential Datalog
//! Queries*) depends only on the query *form* — rule set, query predicate,
//! existential adornment — not on the concrete query atom or the EDB. A
//! service that answers many queries against a persistent, growing fact
//! base should therefore optimize each form **once** and reuse it. The
//! three pieces:
//!
//! * **prepared-query cache** ([`cache`]): forms map to fully optimized
//!   programs (`datalog_opt::prepare`); repeats skip the optimizer, which
//!   is observable as zero new `PhaseEvent`s in the `TRACE` output;
//! * **snapshot-isolated reads** (`datalog_engine::shared`): worker
//!   threads evaluate against consistent watermark snapshots of the
//!   append-only EDB while `FACT`/`LOAD` ingest concurrently;
//! * **incremental invalidation**: a new fact clears memoized answers only
//!   for forms whose optimized program transitively reads that predicate.
//!
//! Start it with `xdl serve [--port P] [--threads N]` and talk to it with
//! `xdl query --connect ADDR` or any line-oriented TCP client (see
//! [`protocol`] for the grammar). `QUERY` responses are byte-identical to
//! `xdl run` on the same program and facts.
//!
//! Protocol v4 adds **bounded-staleness serving**: `QUERY` accepts a
//! consistency mode (`fresh` | `staleness=<ms>` | `any`), every response
//! carries the frontier version it was served at plus an upper staleness
//! bound, and costly resident drains are deferred to a maintenance thread
//! while readers keep answering off the last published frontier.

pub mod cache;
pub mod client;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod wal;

pub use cache::{CachedAnswers, FormKey, PreparedCache};
pub use client::Client;
pub use fault::FaultPlan;
pub use metrics::ServerMetrics;
pub use protocol::{Consistency, ErrCode, Request, Response, PROTOCOL_VERSION};
pub use server::{render_answers, Server, ServerConfig, ServerState};
pub use wal::{FsyncPolicy, Recovery, RunBatch, Wal, WalOp};

//! The server: shared state, request handling, and the accept loop.
//!
//! N worker threads block in `accept()` on one shared listener; each
//! connection is served to completion by the worker that accepted it, so
//! the server handles up to N concurrent clients. All workers share one
//! [`ServerState`]:
//!
//! * the rule set (plus its fingerprint), guarded by an `RwLock` — queries
//!   read it, `LOAD` extends it;
//! * the EDB in a [`SharedDatabase`]: writers ingest while readers evaluate
//!   against [`DbSnapshot`](datalog_engine::DbSnapshot)s, never blocking
//!   each other beyond per-access row locks;
//! * the [`PreparedCache`] behind a `Mutex` — held across a cold `prepare`
//!   (optimization is the expensive, memoized step; serializing it
//!   deduplicates concurrent cold misses of the same form);
//! * the last query's trace, served by `TRACE`.
//!
//! The paper's IDB/EDB convention (§1.1: the IDB holds no facts) is
//! enforced at the boundary: `FACT` refuses predicates derived by rules,
//! `LOAD` refuses rules whose head predicate already has stored facts.
//! This keeps every optimization the cache reuses valid — query
//! equivalence of the optimized program is only guaranteed on IDB-empty
//! inputs.
//!
//! ## Fault tolerance
//!
//! The serving stack is built to refuse work it cannot finish rather than
//! wedge or lie:
//!
//! * **Durability** — with a WAL directory configured, every accepted
//!   `FACT`/`LOAD` is logged (and fsynced per policy) *before* it is
//!   applied and acknowledged; startup replays snapshot + log ([`crate::wal`]).
//! * **Deadlines & budgets** — each query evaluates under the configured
//!   wall-clock deadline, derived-fact budget, and the server's global
//!   [`CancelToken`]; a trip returns a coded `ERR` carrying the partial
//!   [`EvalStats`](datalog_engine::EvalStats), and the tripped result is
//!   **not** memoized.
//! * **Overload control** — a connection limit sheds excess accepts with
//!   `ERR busy`, and a global in-flight query budget sheds excess `QUERY`s
//!   before they touch the evaluator.
//! * **Panic isolation** — each request runs under `catch_unwind`; a panic
//!   poisons no state (all lock accessors recover) and answers
//!   `ERR internal` while the server lives on.
//! * **Draining shutdown** — `SHUTDOWN` stops accepting new work, lets
//!   in-flight queries run for a bounded grace period, then cancels the
//!   stragglers, which surface as clean `ERR shutdown` responses.
//!
//! Every limit trip is recorded as a
//! [`PhaseEvent::LimitTripped`](datalog_trace::PhaseEvent) and counted in
//! `STATS`.
//!
//! ## Incremental serving (PR 7)
//!
//! With `--resident-forms=N` (default 8), up to N cached forms pin a
//! [`ResidentEval`]: the retained semi-naive state of their canonical
//! program, advanced by *delta propagation* instead of being recomputed.
//! Ingestion still inserts first and invalidates answer slots after (the
//! memo-correctness invariant), then *drains* pending shared-store rows
//! into every resident whose support set the fact touches. A query over a
//! resident form defensively catches the resident up to its own snapshot
//! (the drain and the query race benignly: catch-up is idempotent and the
//! shared store append-only) and serves answers straight off the resident
//! frontier — byte-identical to a cold evaluation at the same watermarks,
//! at any thread count. Only monotone forms are eligible
//! ([`ResidentEval::supports`]); a resident lost to LRU eviction or
//! poisoned by a mid-propagation trip falls back to cold recompute (and
//! re-pins), counted in `xdl_fallback_recomputes_total`.
//!
//! ## Bounded-staleness serving (PR 9)
//!
//! Every converged propagation publishes an immutable
//! [`Frontier`](datalog_engine::incremental::Frontier) (version counter +
//! input watermark + timestamp), and `QUERY` accepts a consistency mode
//! (protocol v4): `fresh` (the default — byte-identical to blocking
//! catch-up), `staleness=<ms>`, or `any`. Drains are *backpressure-aware*:
//! the ingest path estimates each touched resident's drain cost from the
//! PR 8 size-bound polynomials (bound at current cardinalities minus bound
//! at the form's applied watermarks) and drains synchronously only below
//! `--drain-sync-cost`; costlier drains are deferred to a background
//! maintenance thread while readers are served off the last published
//! frontier (`cache=stale`) or, when the form lock is contended by the
//! drain itself, off the retained answer memo (`cache=stale_answers`).
//! Every response carries `frontier=` and `staleness_us=` (an upper bound:
//! wall age of the earliest instant an unapplied row can have arrived). A
//! bounded reader whose budget cannot be met without a refused synchronous
//! catch-up gets `ERR stale <bound_ms>`.
//!
//! Resident state is *self-healing*: a poisoned form is rebuilt — lazily
//! by the next eligible query (even without the maintenance thread) or in
//! the background with capped exponential backoff — counted in
//! `xdl_resident_rebuilds_total` / `xdl_resident_poisonings_total`.
//! [`FaultPlan`] can inject slow and failing drains to exercise all of it.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use datalog_adorn::query_adornment;
use datalog_ast::{
    parse_atom, parse_program, parse_rule, Atom, PredRef, Program, Query, Rule, Value,
};
use datalog_engine::incremental::{DeltaLimits, Fact as DeltaFact, ResidentEval};
use datalog_engine::{
    query_answers_full, AnswerSet, CancelToken, DbSnapshot, EngineError, EvalOptions, EvalStats,
    FactSet, SharedDatabase,
};
use datalog_opt::{fingerprint_rules, prepare, OptimizerConfig, PreparedProgram};
use datalog_trace::{Json, PhaseEvent};

use crate::cache::{CachedAnswers, FormKey, PreparedCache, ResidentForm};
use crate::fault::FaultPlan;
use crate::metrics::{verb_index, Phase, ServerMetrics};
use crate::protocol::{Consistency, ErrCode, Request, Response, PROTOCOL_VERSION};
use crate::wal::{FsyncPolicy, RunBatch, Wal, WalOp};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of worker threads (= max concurrent clients).
    pub threads: usize,
    /// Evaluation threads per query (the engine's fixpoint fan-out).
    /// Results are byte-identical at any value; the default honors the
    /// `XDL_EVAL_THREADS` environment variable and falls back to the
    /// machine's available parallelism.
    pub eval_threads: usize,
    /// Forms allowed to pin resident incremental state
    /// (`--resident-forms`; 0 disables pinning entirely and restores the
    /// invalidate-and-recompute serving behavior).
    pub resident_forms: usize,
    /// Greedily reorder join bodies in the prepared (serving) path. On by
    /// default — the server always wants the cheapest join order; `xdl
    /// run` keeps it off so experiment counters reflect source order.
    pub reorder_joins: bool,
    /// Prepared-form cache capacity.
    pub cache_capacity: usize,
    /// Run translation validation on every optimizer invocation
    /// (`OptimizerConfig::verify`): a query whose optimization cannot be
    /// re-justified is answered with an error instead of a wrong table.
    pub verify: bool,
    /// WAL directory; `None` runs without durability (the seed behavior).
    pub wal_dir: Option<PathBuf>,
    /// When to fsync the WAL.
    pub fsync: FsyncPolicy,
    /// Snapshot + truncate the log after this many appended records
    /// (0 disables compaction).
    pub compact_every: u64,
    /// Connections served concurrently before new accepts are shed with
    /// `ERR busy` (0 = no limit). Shedding needs an idle worker to issue
    /// the refusal, so a cap below `threads` is what makes it observable.
    pub max_conns: usize,
    /// Queries evaluating at once across all connections before `QUERY`
    /// is shed with `ERR busy` (0 = no limit).
    pub max_inflight: usize,
    /// Per-query wall-clock deadline.
    pub deadline_ms: Option<u64>,
    /// Per-query derived-fact budget.
    pub fact_budget: Option<u64>,
    /// Bound-aware admission (on by default, only meaningful with a
    /// `fact_budget`): refuse a query with `ERR bound` *before* evaluation
    /// when its static derivation bound, evaluated at current EDB
    /// cardinalities, already exceeds the budget. Off restores
    /// trip-at-runtime (`ERR budget` with partial stats).
    pub bound_admission: bool,
    /// Shutdown drain: how long in-flight queries may keep running before
    /// the global cancel token fires.
    pub grace_ms: u64,
    /// Telemetry histograms on (`true`, the default) or the no-op baseline
    /// (`--no-metrics`; counters still record, histograms stop sampling —
    /// the comparison the e13 overhead experiment makes).
    pub metrics: bool,
    /// Log a structured JSON line to stderr for every query at or over
    /// this wall-clock threshold (request id, form, phase breakdown).
    pub slow_query_ms: Option<u64>,
    /// Capacity of the `limit_events` ring surfaced by `STATS`; evictions
    /// beyond it are counted in `xdl_limit_events_dropped_total`.
    pub limit_events: usize,
    /// Backpressure threshold for resident drains: a drain whose
    /// bound-polynomial-estimated cost (static derivation bound at current
    /// cardinalities minus the bound at the form's applied watermarks) is
    /// at or below this runs synchronously on the ingest/query path;
    /// anything costlier is deferred to the maintenance thread while
    /// readers serve off the published frontier. The default is high
    /// enough that typical workloads keep today's drain-inline behavior.
    pub drain_sync_cost: u64,
    /// Base delay of the capped exponential backoff between background
    /// rebuild attempts of a poisoned resident form (doubles per failed
    /// attempt, capped at [`REBUILD_BACKOFF_CAP_MS`]).
    pub rebuild_ms: u64,
    /// Fault-injection switches (the default plan injects nothing).
    pub fault: Arc<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            eval_threads: std::env::var("XDL_EVAL_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(default_parallelism),
            resident_forms: 8,
            reorder_joins: true,
            cache_capacity: 256,
            verify: false,
            wal_dir: None,
            fsync: FsyncPolicy::Always,
            compact_every: 4096,
            max_conns: 0,
            max_inflight: 0,
            deadline_ms: None,
            fact_budget: None,
            bound_admission: true,
            grace_ms: 2000,
            metrics: true,
            slow_query_ms: None,
            limit_events: LIMIT_EVENT_RING,
            drain_sync_cost: DRAIN_SYNC_COST,
            rebuild_ms: 50,
            fault: Arc::new(FaultPlan::new()),
        }
    }
}

/// Default `drain_sync_cost`: high enough that ordinary ingest keeps the
/// synchronous drain path (and its latency envelope) of PR 7.
const DRAIN_SYNC_COST: u64 = 250_000;

/// Ceiling of the rebuild backoff (milliseconds).
const REBUILD_BACKOFF_CAP_MS: u64 = 5_000;

/// The machine's available parallelism (1 when it cannot be determined).
fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decrement an [`AtomicUsize`] on scope exit (in-flight query guard).
struct Decrement<'a>(&'a AtomicUsize);

impl Drop for Decrement<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Everything the worker threads share.
pub struct ServerState {
    rules: RwLock<(Vec<Rule>, u64)>,
    db: SharedDatabase,
    cache: Mutex<PreparedCache>,
    last_trace: Mutex<Option<Json>>,
    shutdown: AtomicBool,
    threads: usize,
    eval_threads: usize,
    /// Resident-form bound (`--resident-forms`; 0 disables incremental
    /// serving). Mirrors the cache's own capacity; kept here so handlers
    /// can gate eligibility without locking the cache.
    resident_forms: usize,
    reorder_joins: bool,
    verify: bool,
    /// The write-ahead log, when durability is configured.
    wal: Mutex<Option<Wal>>,
    /// Ingest/compaction coordination: ingests hold a read guard across
    /// (WAL append + DB apply), compaction holds the write guard across
    /// (state snapshot + log truncate), so the snapshot can never miss a
    /// record the truncation discards.
    ingest_gate: RwLock<()>,
    fault: Arc<FaultPlan>,
    /// Cancelled when the shutdown grace period expires; every evaluation
    /// carries a clone.
    cancel: CancelToken,
    deadline_ms: Option<u64>,
    fact_budget: Option<u64>,
    /// Pre-eval `ERR bound` refusals (see [`ServerConfig::bound_admission`]).
    bound_admission: bool,
    /// Backpressure threshold for synchronous drains
    /// (see [`ServerConfig::drain_sync_cost`]).
    drain_sync_cost: u64,
    /// Base backoff of background rebuilds ([`ServerConfig::rebuild_ms`]).
    rebuild_ms: u64,
    /// Job queue of the maintenance thread (deferred drains and rebuilds).
    /// `None` on plain in-process states ([`ServerState::new`]) — deferred
    /// work is then picked up lazily by the next eligible query.
    maintenance: Mutex<Option<Sender<DrainJob>>>,
    grace_ms: u64,
    max_conns: usize,
    max_inflight: usize,
    inflight: AtomicUsize,
    active_conns: AtomicUsize,
    /// The metric surface every counter and span records into (see
    /// [`crate::metrics`]); `STATS` and `METRICS` read the same atomics.
    metrics: ServerMetrics,
    /// `--slow-query-ms`: structured stderr log threshold.
    slow_query_ms: Option<u64>,
    /// Capacity of the `limit_events` ring (`--limit-events`).
    limit_ring: usize,
    /// Startup recovery summary (present when a WAL was replayed).
    recovery: Option<Json>,
    /// Ring of recent `LimitTripped` events (as JSON), newest last.
    limit_events: Mutex<Vec<Json>>,
}

/// Default cap on the `limit_events` ring (`--limit-events` overrides).
const LIMIT_EVENT_RING: usize = 64;

/// One unit of deferred resident maintenance.
enum DrainJob {
    /// Catch a lagging resident up to the current database (deferred off
    /// the ingest path by the drain-cost policy).
    Drain(FormKey),
    /// Rebuild a poisoned/lost resident from scratch; `attempt` drives the
    /// capped exponential backoff.
    Rebuild { key: FormKey, attempt: u32 },
}

/// A snapshot of the answer memo taken under the cache lock, carried into
/// stale-plan execution as the contention fallback: if the form lock is
/// held by a drain, this payload can be served instead — its age
/// (`published_at.elapsed()`) is a correct upper staleness bound.
struct StaleMemo {
    payload: String,
    answers: usize,
    frontier: u64,
    published_at: Instant,
}

/// How an eligible query over *live* resident state is served. Decided
/// under the cache lock from mirror-only data (lag, staleness anchor,
/// drain cost), executed after the lock drops.
enum ResidentAction {
    /// Block on the form lock, propagate to the query snapshot, serve at
    /// staleness zero. Used for `fresh` reads and for over-budget bounded
    /// reads whose estimated drain cost is below the synchronous ceiling.
    Fresh,
    /// Serve the last published frontier without catching up. `anchor` is
    /// the conservative staleness origin — `pending_since` when the form
    /// lags, `None` when it was fully drained at decision time (the serve
    /// is then indistinguishable from fresh); `budget` caps how old the
    /// memo fallback may be under lock contention (`None` = any age).
    Stale {
        anchor: Option<Instant>,
        memo: Option<StaleMemo>,
        budget: Option<Duration>,
    },
    /// Frontier older than the staleness budget and the drain too costly
    /// to run synchronously: answer `ERR stale <bound_ms>`.
    Refuse { bound_ms: u64 },
}

/// A [`ResidentAction`] plus everything needed to execute it without
/// re-consulting the cache: the form handle, its support set, and the
/// query atom spliced into the canonical program's namespace.
struct ResidentPlan {
    form: Arc<Mutex<ResidentForm>>,
    support: BTreeSet<PredRef>,
    q_atom: Atom,
    action: ResidentAction,
}

/// One extraction off a locked form's frontier: the rendered payload plus
/// the identity needed to memoize and label it.
struct FrontierRead {
    payload: String,
    n_answers: usize,
    frontier: u64,
    applied: BTreeMap<PredRef, usize>,
}

impl ServerState {
    /// Fresh state with an empty rule set and EDB, no WAL, and no limits.
    pub fn new(cache_capacity: usize, threads: usize) -> ServerState {
        ServerState {
            rules: RwLock::new((Vec::new(), fingerprint_rules(&[]))),
            db: SharedDatabase::new(),
            cache: Mutex::new(PreparedCache::new(cache_capacity)),
            last_trace: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            threads,
            eval_threads: 1,
            resident_forms: 0,
            reorder_joins: true,
            verify: false,
            wal: Mutex::new(None),
            ingest_gate: RwLock::new(()),
            fault: Arc::new(FaultPlan::new()),
            cancel: CancelToken::new(),
            deadline_ms: None,
            fact_budget: None,
            bound_admission: true,
            drain_sync_cost: DRAIN_SYNC_COST,
            rebuild_ms: 50,
            maintenance: Mutex::new(None),
            grace_ms: 2000,
            max_conns: usize::MAX,
            max_inflight: 0,
            inflight: AtomicUsize::new(0),
            active_conns: AtomicUsize::new(0),
            metrics: ServerMetrics::new(true),
            slow_query_ms: None,
            limit_ring: LIMIT_EVENT_RING,
            recovery: None,
            limit_events: Mutex::new(Vec::new()),
        }
    }

    /// The metric surface (for `METRICS`, tests, and in-process drivers).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Enable translation validation for every prepared form
    /// (`xdl serve --verify`).
    pub fn with_verify(mut self, verify: bool) -> ServerState {
        self.verify = verify;
        self
    }

    /// Attach per-query limits (deadline and derived-fact budget).
    pub fn with_limits(
        mut self,
        deadline_ms: Option<u64>,
        fact_budget: Option<u64>,
    ) -> ServerState {
        self.deadline_ms = deadline_ms;
        self.fact_budget = fact_budget;
        self
    }

    /// Attach a fault-injection plan.
    pub fn with_fault(mut self, fault: Arc<FaultPlan>) -> ServerState {
        self.fault = fault;
        self
    }

    /// Build state from a full config: applies limits, opens the WAL, and
    /// replays snapshot + log into the fresh state.
    pub fn from_config(cfg: &ServerConfig) -> std::io::Result<ServerState> {
        let mut state = ServerState::new(cfg.cache_capacity, cfg.threads.max(1));
        state.metrics = ServerMetrics::new(cfg.metrics);
        state.slow_query_ms = cfg.slow_query_ms;
        state.limit_ring = cfg.limit_events.max(1);
        state.eval_threads = cfg.eval_threads.max(1);
        state.resident_forms = cfg.resident_forms;
        lock(&state.cache).set_resident_capacity(cfg.resident_forms);
        state.reorder_joins = cfg.reorder_joins;
        state.verify = cfg.verify;
        state.fault = Arc::clone(&cfg.fault);
        state.deadline_ms = cfg.deadline_ms;
        state.fact_budget = cfg.fact_budget;
        state.bound_admission = cfg.bound_admission;
        state.drain_sync_cost = cfg.drain_sync_cost;
        state.rebuild_ms = cfg.rebuild_ms.max(1);
        state.grace_ms = cfg.grace_ms;
        state.max_inflight = cfg.max_inflight;
        state.max_conns = if cfg.max_conns == 0 {
            usize::MAX
        } else {
            cfg.max_conns
        };
        if let Some(dir) = &cfg.wal_dir {
            let (mut wal, mut recovery) =
                Wal::open(dir, cfg.fsync, cfg.compact_every, Arc::clone(&cfg.fault))?;
            wal.set_metrics(
                Arc::clone(&state.metrics.wal_append_seconds),
                Arc::clone(&state.metrics.wal_fsync_seconds),
            );
            let mut applied = 0u64;
            let mut skipped = 0u64;
            // Manifest recovery: rules first (so log-tail facts meet the
            // same IDB checks), then each run file bulk-loaded — one
            // order-preserving sort-dedup per batch instead of per-row
            // parsing and hashing — then the log tail replayed on top.
            for rule in &recovery.rules {
                match state.apply_op(&WalOp::Rule(rule.clone())) {
                    Ok(()) => applied += 1,
                    Err(_) => skipped += 1,
                }
            }
            let mut batch_rows = 0u64;
            for batch in std::mem::take(&mut recovery.batches) {
                let pred = PredRef::new(&batch.pred);
                match state.db.load_batch(&pred, batch.arity, batch.rows) {
                    Ok(fresh) => batch_rows += fresh as u64,
                    Err(_) => skipped += 1,
                }
            }
            for op in &recovery.ops {
                match state.apply_op(op) {
                    Ok(()) => applied += 1,
                    Err(_) => skipped += 1,
                }
            }
            state.recovery = Some(
                Json::obj()
                    .with("from_snapshot", recovery.from_snapshot)
                    .with("run_files", recovery.run_files)
                    .with("run_rows", recovery.run_rows)
                    .with("batch_rows", batch_rows)
                    .with("from_log", recovery.from_log)
                    .with("applied", applied)
                    .with("skipped", skipped)
                    .with("truncated_bytes", recovery.truncated_bytes),
            );
            *state.wal.get_mut().unwrap_or_else(|e| e.into_inner()) = Some(wal);
        }
        Ok(state)
    }

    /// Whether shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Startup recovery summary, when a WAL was replayed.
    pub fn recovery(&self) -> Option<&Json> {
        self.recovery.as_ref()
    }

    /// Begin draining: refuse new work, give in-flight queries `grace_ms`,
    /// then cancel whatever is still running.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.note_limit(
            "shutdown",
            &format!("draining; in-flight queries get {}ms grace", self.grace_ms),
        );
        let cancel = self.cancel.clone();
        let grace = Duration::from_millis(self.grace_ms);
        std::thread::spawn(move || {
            std::thread::sleep(grace);
            cancel.cancel();
        });
    }

    /// Record one limit trip in the event ring. Evictions are counted
    /// (`xdl_limit_events_dropped_total`), never silent.
    fn note_limit(&self, kind: &str, detail: &str) {
        let ev = PhaseEvent::LimitTripped {
            kind: kind.to_string(),
            detail: detail.to_string(),
        };
        let mut ring = lock(&self.limit_events);
        while ring.len() >= self.limit_ring {
            ring.remove(0);
            self.metrics.limit_events_dropped.inc();
        }
        ring.push(ev.to_json());
    }

    /// Handle one request with panic isolation: a panicking handler
    /// answers `ERR internal` and leaves the state serviceable (all lock
    /// accessors recover from poisoning). This is what the TCP loop calls.
    pub fn handle_safely(&self, req: &Request) -> Response {
        match std::panic::catch_unwind(AssertUnwindSafe(|| self.handle(req))) {
            Ok(resp) => resp,
            Err(payload) => {
                self.metrics.panics_recovered.inc();
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                self.note_limit("panic", &msg);
                Response::err_code(
                    ErrCode::Internal,
                    format!("request handler panicked ({msg}); server continues"),
                )
            }
        }
    }

    /// Handle one request. Pure state-in/response-out — shared by the TCP
    /// loop, the tests, and the bench harness. Every request is counted
    /// and its end-to-end latency recorded under its verb.
    pub fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        let resp = self.handle_inner(req);
        let verb = verb_index(req);
        self.metrics.requests_total[verb].inc();
        self.metrics.request_seconds[verb].record_duration(t0.elapsed());
        resp
    }

    fn handle_inner(&self, req: &Request) -> Response {
        if self.is_shutdown()
            && matches!(
                req,
                Request::Fact(_) | Request::Load(_) | Request::Query { .. }
            )
        {
            return Response::err_code(ErrCode::Shutdown, "server is draining");
        }
        match req {
            Request::Fact(text) => self.handle_fact(text),
            Request::Load(path) => self.handle_load(path),
            Request::Query { text, consistency } => self.handle_query(text, *consistency),
            Request::Stats => self.handle_stats(),
            Request::Trace => self.handle_trace(),
            Request::Metrics { json } => self.handle_metrics(*json),
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ok().with_info("bye", true)
            }
        }
    }

    /// Apply one recovered WAL operation to the in-memory state (no
    /// logging — the record is already durable). Failures are skipped, not
    /// fatal: a record that was valid when logged can only become invalid
    /// through manual log surgery.
    fn apply_op(&self, op: &WalOp) -> Result<(), String> {
        match op {
            WalOp::Fact(text) => {
                let atom = parse_atom(text).map_err(|e| e.render_at("wal"))?;
                let values = atom
                    .ground_values()
                    .ok_or_else(|| format!("wal fact '{atom}' is not ground"))?;
                self.db
                    .insert(&atom.pred, &values)
                    .map_err(|e| e.to_string())?;
                Ok(())
            }
            WalOp::Rule(text) => {
                let rule = parse_rule(text).map_err(|e| e.render_at("wal"))?;
                let mut rules = write_lock(&self.rules);
                if !rules.0.contains(&rule) {
                    rules.0.push(rule);
                    rules.1 = fingerprint_rules(&rules.0);
                }
                Ok(())
            }
        }
    }

    /// Append accepted operations to the WAL (no-op without one). On
    /// failure the caller must not apply or acknowledge them. The caller
    /// holds the ingest gate (read).
    fn wal_append(&self, ops: &[WalOp]) -> Result<(), Response> {
        let mut guard = lock(&self.wal);
        let Some(wal) = guard.as_mut() else {
            return Ok(());
        };
        for op in ops {
            if let Err(e) = wal.append(op) {
                self.metrics.wal_errors.inc();
                return Err(Response::err_code(
                    ErrCode::Internal,
                    format!("wal append failed ({e}); write not applied"),
                ));
            }
        }
        Ok(())
    }

    /// Snapshot + truncate the log if enough records accumulated. Takes
    /// the ingest gate exclusively, so no in-flight ingest can sit between
    /// its WAL record and its DB apply while the state is snapshotted.
    fn maybe_compact(&self) {
        {
            let guard = lock(&self.wal);
            match guard.as_ref() {
                Some(wal) if wal.wants_compaction() => {}
                _ => return,
            }
        }
        let _gate = write_lock(&self.ingest_gate);
        let (rules, batches) = self.state_batches();
        let mut guard = lock(&self.wal);
        if let Some(wal) = guard.as_mut() {
            if wal.wants_compaction() {
                let t0 = Instant::now();
                if wal.compact(&rules, &batches).is_err() {
                    // The log stays; durability is unaffected, only restart
                    // cost. Count it and move on.
                    self.metrics.wal_errors.inc();
                } else {
                    self.metrics
                        .compaction_seconds
                        .record_duration(t0.elapsed());
                }
            }
        }
    }

    /// The full current state as manifest material: rule texts plus one
    /// [`RunBatch`] per stored predicate (rows in ingestion order, so a
    /// restart rebuilds identical row ids). Rules come first so replayed
    /// facts meet the same IDB checks they passed at ingest.
    fn state_batches(&self) -> (Vec<String>, Vec<RunBatch>) {
        let rules: Vec<String> = read_lock(&self.rules)
            .0
            .iter()
            .map(|r| r.to_string())
            .collect();
        let snapshot = self.db.snapshot();
        let mut batches = Vec::new();
        for pred in snapshot.preds() {
            let rows: Vec<Box<[Value]>> = snapshot
                .rows(&pred)
                .into_iter()
                .map(Vec::into_boxed_slice)
                .collect();
            if rows.is_empty() {
                continue;
            }
            batches.push(RunBatch {
                pred: pred.to_string(),
                arity: rows[0].len(),
                rows,
            });
        }
        (rules, batches)
    }

    /// Propagate every shared-store row past the form's applied watermarks
    /// (per support predicate, rows `[applied[p], watermark(p))`) through
    /// the retained semi-naive state. Idempotent (the resident dedups) and
    /// gap-free (the shared store is append-only), so concurrent drains
    /// and a query's defensive catch-up race benignly.
    ///
    /// The caller holds the *form* lock and must NOT hold the cache lock.
    /// `Err(())` means the propagation failed and the eval is poisoned —
    /// the caller must run [`Self::poison_form`].
    fn propagate(
        &self,
        support: &BTreeSet<PredRef>,
        form: &mut ResidentForm,
        snapshot: &DbSnapshot,
    ) -> Result<u64, ()> {
        if form.eval.poisoned() {
            return Err(());
        }
        let mut batch: Vec<DeltaFact> = Vec::new();
        for pred in support {
            let start = form.applied.get(pred).copied().unwrap_or(0);
            for row in snapshot.rows_from(pred, start) {
                batch.push(DeltaFact::new(pred.clone(), row));
            }
        }
        if batch.is_empty() {
            return Ok(0);
        }
        // Fault hooks fire only on real propagation work: a slow drain
        // sleeps while holding the form lock (the widest window for
        // concurrent stale serves), a failing drain runs under an
        // already-cancelled token and poisons the state.
        let delay = self.fault.drain_delay_ms();
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        let abort = CancelToken::new();
        if self.fault.drain_should_fail() {
            abort.cancel();
        }
        let t0 = Instant::now();
        // No deadline: a propagation either completes or poisons the
        // frontier, so the only limits worth carrying are the shutdown
        // drain and the injected abort.
        let limits = DeltaLimits {
            deadline: None,
            cancel: Some(self.cancel.joined(&abort)),
        };
        match form.eval.apply_deltas(&batch, &limits) {
            Ok(report) => {
                for pred in support {
                    form.applied.insert(pred.clone(), snapshot.count(pred));
                }
                self.metrics
                    .incremental_applied_facts
                    .add(report.new_facts as u64);
                self.metrics
                    .incremental_seconds
                    .record_duration(t0.elapsed());
                Ok(report.new_facts as u64)
            }
            Err(_) => Err(()),
        }
    }

    /// Bound-polynomial drain-cost estimate: the static derivation bound
    /// evaluated at the snapshot's cardinalities minus the bound at the
    /// form's applied watermarks — an upper envelope on how much new
    /// derivation a catch-up can possibly do.
    fn drain_cost(
        prepared: &PreparedProgram,
        snapshot: &DbSnapshot,
        applied: &BTreeMap<PredRef, usize>,
    ) -> u64 {
        let now_cards: BTreeMap<String, u64> = prepared
            .bounds
            .edb
            .iter()
            .map(|p| (p.to_string(), snapshot.count(&p.base()) as u64))
            .collect();
        let then_cards: BTreeMap<String, u64> = prepared
            .bounds
            .edb
            .iter()
            .map(|p| {
                let n = applied.get(&p.base()).copied().unwrap_or(0);
                (p.to_string(), n as u64)
            })
            .collect();
        prepared
            .bounds
            .eval_total(&now_cards)
            .saturating_sub(prepared.bounds.eval_total(&then_cards))
    }

    /// Post-drain bookkeeping under a short cache lock: merge the form's
    /// applied watermarks into the mirror (per-predicate max — a slower
    /// concurrent drain must not regress it) and re-anchor `pending_since`.
    /// `t_anchor` is when the drained snapshot was captured: any row still
    /// missing arrived after it, so it is a correct staleness anchor.
    fn finish_drain(&self, key: &FormKey, applied: &BTreeMap<PredRef, usize>, t_anchor: Instant) {
        let lagged = self.db.snapshot();
        let mut cache = lock(&self.cache);
        let Some(e) = cache.peek_mut(key) else {
            return;
        };
        for (p, n) in applied {
            let m = e.applied_mirror.entry(p.clone()).or_insert(0);
            *m = (*m).max(*n);
        }
        let lag = lagged.lag_from(&e.prepared.support, &e.applied_mirror);
        e.pending_since = (lag > 0).then(|| match e.pending_since {
            Some(older) => older.min(t_anchor),
            None => t_anchor,
        });
        e.rebuild_attempts = 0;
    }

    /// A propagation failed: count the poisoning, drop the resident, and
    /// schedule a rebuild (background when the maintenance thread runs,
    /// lazily by the next eligible query otherwise).
    fn poison_form(&self, key: &FormKey) {
        self.metrics.resident_poisonings.inc();
        let attempt = {
            let mut cache = lock(&self.cache);
            let Some(e) = cache.peek_mut(key) else {
                return;
            };
            e.clear_resident();
            e.rebuild_attempts += 1;
            e.rebuild_attempts
        };
        self.note_limit(
            "poisoned",
            &format!(
                "resident form {} poisoned mid-propagation; rebuild scheduled (attempt {attempt})",
                key.pred
            ),
        );
        self.schedule_rebuild(key.clone(), attempt);
    }

    /// Hand a rebuild to the maintenance thread, or leave it to the lazy
    /// query-path rebuild when no thread exists (plain in-process states).
    fn schedule_rebuild(&self, key: FormKey, attempt: u32) {
        let sender = lock(&self.maintenance).clone();
        if let Some(tx) = sender {
            if let Some(e) = lock(&self.cache).peek_mut(&key) {
                if e.drain_queued {
                    return;
                }
                e.drain_queued = true;
            }
            let _ = tx.send(DrainJob::Rebuild { key, attempt });
        }
    }

    /// Drain one form to `snapshot`, holding only the form lock (blocking
    /// acquisition; the caller must not hold the cache lock). Returns
    /// whether the resident survived.
    fn drain_one(
        &self,
        key: &FormKey,
        form: &Arc<Mutex<ResidentForm>>,
        support: &BTreeSet<PredRef>,
        snapshot: &DbSnapshot,
        t_anchor: Instant,
    ) -> bool {
        let result = {
            let mut g = lock(form);
            self.propagate(support, &mut g, snapshot).map(|_| {
                support
                    .iter()
                    .map(|p| (p.clone(), snapshot.count(p)))
                    .collect::<BTreeMap<_, _>>()
            })
        };
        match result {
            Ok(applied) => {
                self.finish_drain(key, &applied, t_anchor);
                true
            }
            Err(()) => {
                self.poison_form(key);
                false
            }
        }
    }

    /// Ingestion-side propagation, backpressure-aware: for every resident
    /// whose support one of `touched` belongs to, estimate the drain cost
    /// and either drain synchronously (cheap), defer to the maintenance
    /// thread (costly — readers serve the published frontier meanwhile),
    /// or just mark the lag pending for query-time lazy catch-up when no
    /// maintenance thread exists. Runs after the answer-slot staling, off
    /// the ingest gate — the snapshot taken here necessarily includes the
    /// rows just inserted.
    fn drain_residents(&self, touched: &[PredRef]) {
        if self.resident_forms == 0 || touched.is_empty() {
            return;
        }
        let t_snap = Instant::now();
        let snapshot = self.db.snapshot();
        let mut inline: Vec<(FormKey, Arc<Mutex<ResidentForm>>, BTreeSet<PredRef>)> = Vec::new();
        let mut deferred: Vec<FormKey> = Vec::new();
        {
            let mut cache = lock(&self.cache);
            for (key, entry) in cache.iter_mut() {
                let Some(form) = entry.resident.as_ref() else {
                    continue;
                };
                if !touched.iter().any(|p| entry.prepared.depends_on(p)) {
                    continue;
                }
                let lag = snapshot.lag_from(&entry.prepared.support, &entry.applied_mirror);
                if lag == 0 {
                    continue;
                }
                // Rows past the mirror arrived no earlier than the previous
                // drain's snapshot; an already-set anchor is older and wins.
                entry.pending_since.get_or_insert(t_snap);
                let cost = Self::drain_cost(&entry.prepared, &snapshot, &entry.applied_mirror);
                if cost <= self.drain_sync_cost {
                    inline.push((
                        key.clone(),
                        Arc::clone(form),
                        entry.prepared.support.clone(),
                    ));
                } else if !entry.drain_queued {
                    entry.drain_queued = true;
                    deferred.push(key.clone());
                }
            }
        }
        for (key, form, support) in &inline {
            self.drain_one(key, form, support, &snapshot, t_snap);
        }
        if !deferred.is_empty() {
            let sender = lock(&self.maintenance).clone();
            match sender {
                Some(tx) => {
                    for key in deferred {
                        let _ = tx.send(DrainJob::Drain(key));
                    }
                }
                None => {
                    // No maintenance thread: clear the queued marker so a
                    // later ingest can reconsider; `pending_since` keeps the
                    // staleness accounting honest and the next eligible
                    // query catches up lazily.
                    let mut cache = lock(&self.cache);
                    for key in &deferred {
                        if let Some(e) = cache.peek_mut(key) {
                            e.drain_queued = false;
                        }
                    }
                }
            }
        }
    }

    /// Spawn the background maintenance thread (deferred drains, rebuild
    /// backoff). Called by [`Server::spawn`]; in-process harnesses may call
    /// it too. No-op (returns `None`) when resident serving is disabled.
    pub fn start_maintenance(self: &Arc<Self>) -> Option<JoinHandle<()>> {
        if self.resident_forms == 0 {
            return None;
        }
        let (tx, rx) = std::sync::mpsc::channel();
        *lock(&self.maintenance) = Some(tx);
        let state = Arc::clone(self);
        Some(std::thread::spawn(move || state.maintenance_loop(&rx)))
    }

    fn maintenance_loop(&self, rx: &Receiver<DrainJob>) {
        loop {
            if self.is_shutdown() {
                return;
            }
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(DrainJob::Drain(key)) => self.background_drain(&key),
                Ok(DrainJob::Rebuild { key, attempt }) => self.background_rebuild(&key, attempt),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Execute one deferred drain: catch the form up to the *current*
    /// database (not the snapshot that queued it — later ingests fold in
    /// for free).
    fn background_drain(&self, key: &FormKey) {
        let t_snap = Instant::now();
        let snapshot = self.db.snapshot();
        let handle = {
            let mut cache = lock(&self.cache);
            let Some(e) = cache.peek_mut(key) else {
                return;
            };
            // Cleared before the drain: an ingest arriving mid-drain may
            // queue a follow-up job, which is idempotent and cheap.
            e.drain_queued = false;
            e.resident
                .as_ref()
                .map(|f| (Arc::clone(f), e.prepared.support.clone()))
        };
        let Some((form, support)) = handle else {
            return;
        };
        if self.drain_one(key, &form, &support, &snapshot, t_snap) {
            self.metrics.background_drains.inc();
            // The maintenance thread owns the slack after a deferred
            // drain: seal the resident's freshly-applied tail into
            // bloom-gated sorted runs (and consolidate) off the query
            // path. Skipped under contention — the next seal point
            // (freeze barrier or threshold) picks it up.
            if let Ok(mut g) = form.try_lock() {
                g.eval.seal_storage();
            }
            self.db.seal_storage();
        }
    }

    /// One background rebuild attempt, after its capped exponential
    /// backoff. A repeatedly failing rebuild re-queues itself with a
    /// doubled delay; success resets the counter.
    fn background_rebuild(&self, key: &FormKey, attempt: u32) {
        if attempt > 1 {
            let shift = (attempt - 1).min(16);
            let wait = (self.rebuild_ms << shift).min(REBUILD_BACKOFF_CAP_MS);
            std::thread::sleep(Duration::from_millis(wait));
        }
        if self.is_shutdown() {
            return;
        }
        {
            let mut cache = lock(&self.cache);
            let Some(e) = cache.peek_mut(key) else {
                return;
            };
            e.drain_queued = false;
            if e.resident.is_some() {
                // A query already rebuilt it lazily.
                return;
            }
        }
        if let Err(next_attempt) = self.rebuild_resident(key) {
            self.schedule_rebuild(key.clone(), next_attempt);
        }
    }

    /// Rebuild a lost resident from a fresh snapshot and pin it. `Ok(true)`
    /// when pinned (counted), `Ok(false)` when the form is gone, already
    /// resident, or ineligible, `Err(next_attempt)` when construction
    /// failed (counted as a poisoning).
    fn rebuild_resident(&self, key: &FormKey) -> Result<bool, u32> {
        let snapshot = self.db.snapshot();
        let staged = {
            let mut cache = lock(&self.cache);
            let Some(e) = cache.peek_mut(key) else {
                return Ok(false);
            };
            if e.resident.is_some()
                || !ResidentEval::supports(&e.prepared.program)
                || !ResidentEval::admits_bound_class(e.prepared.bound_class)
            {
                return Ok(false);
            }
            (e.prepared.program.clone(), e.prepared.support.clone())
        };
        let (canonical, support) = staged;
        let mut input = FactSet::new();
        for pred in &support {
            for row in snapshot.rows(pred) {
                input.insert(pred.clone(), row);
            }
        }
        // The failing-drain fault also covers rebuilds: an armed plan
        // cancels the construction, exercising the repeatedly-poisoned
        // backoff path end to end.
        let abort = CancelToken::new();
        if self.fault.drain_should_fail() {
            abort.cancel();
        }
        let opts = EvalOptions {
            boolean_cut: true,
            reorder_joins: self.reorder_joins,
            threads: self.eval_threads,
            cancel: Some(self.cancel.joined(&abort)),
            metrics: Some(self.metrics.eval.clone()),
            ..EvalOptions::default()
        };
        match ResidentEval::new(&canonical, &input, &opts) {
            Ok(eval) => {
                let applied = support
                    .iter()
                    .map(|p| (p.clone(), snapshot.count(p)))
                    .collect();
                let mut cache = lock(&self.cache);
                if cache.peek_mut(key).is_some_and(|e| e.resident.is_none())
                    && cache.pin_resident(key, ResidentForm { eval, applied })
                {
                    self.metrics.resident_rebuilds.inc();
                    return Ok(true);
                }
                Ok(false)
            }
            Err(_) => {
                self.metrics.resident_poisonings.inc();
                let mut cache = lock(&self.cache);
                let attempt = cache
                    .peek_mut(key)
                    .map(|e| {
                        e.rebuild_attempts += 1;
                        e.rebuild_attempts
                    })
                    .unwrap_or(1);
                Err(attempt)
            }
        }
    }

    /// Extract the query's answers off the form's current frontier (the
    /// caller holds the form lock).
    fn read_frontier(form: &ResidentForm, q_atom: &Atom) -> FrontierRead {
        let answers = form.eval.answers(q_atom);
        FrontierRead {
            payload: render_answers(&answers),
            n_answers: answers.len(),
            frontier: form.eval.frontier().version,
            applied: form.applied.clone(),
        }
    }

    /// Execute a [`ResidentPlan`] decided under the cache lock. `Some` is
    /// the final response; `None` means the resident state died mid-plan
    /// (poisoned — already counted and cleaned up) and the caller must
    /// recompute from cold.
    #[allow(clippy::too_many_arguments)]
    fn execute_resident_plan(
        &self,
        plan: ResidentPlan,
        queue_drain: bool,
        key: &FormKey,
        query: &Query,
        query_repr: &str,
        snapshot: &DbSnapshot,
        t_snap: Instant,
        started: Instant,
        req_id: u64,
        d_parse: Duration,
        t_cache: Instant,
    ) -> Option<Response> {
        match plan.action {
            ResidentAction::Refuse { bound_ms } => {
                if queue_drain {
                    let sender = lock(&self.maintenance).clone();
                    match sender {
                        Some(tx) => {
                            let _ = tx.send(DrainJob::Drain(key.clone()));
                        }
                        None => {
                            if let Some(e) = lock(&self.cache).peek_mut(key) {
                                e.drain_queued = false;
                            }
                        }
                    }
                }
                self.metrics.stale_refusals.inc();
                self.note_limit(
                    "stale",
                    &format!(
                        "query over {} refused: resident frontier {bound_ms}ms stale, \
                         drain too costly to run synchronously",
                        key.pred
                    ),
                );
                Some(Response::err_stale(
                    bound_ms,
                    "frontier exceeds staleness budget while a drain is pending; \
                     retry, loosen the budget, or request fresh",
                ))
            }
            ResidentAction::Fresh => {
                // Blocking catch-up: lock the form, propagate to the query
                // snapshot, serve at staleness zero.
                let served = {
                    let mut g = lock(&plan.form);
                    match self.propagate(&plan.support, &mut g, snapshot) {
                        Ok(_) => Some(Self::read_frontier(&g, &plan.q_atom)),
                        Err(()) => None,
                    }
                };
                let Some(read) = served else {
                    self.poison_form(key);
                    return None;
                };
                self.finish_drain(key, &read.applied, t_snap);
                Some(self.respond_resident(
                    key,
                    query,
                    query_repr,
                    read,
                    t_snap,
                    Duration::ZERO,
                    "resident",
                    started,
                    req_id,
                    d_parse,
                    t_cache,
                ))
            }
            ResidentAction::Stale {
                anchor,
                memo,
                budget,
            } => {
                // Serve the published frontier without catching up. Try the
                // form lock first: a bounded/any reader must not queue
                // behind a drain that is busy applying newer rows.
                let grabbed = match plan.form.try_lock() {
                    Ok(g) => Some(g),
                    Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
                    Err(std::sync::TryLockError::WouldBlock) => None,
                };
                let read = match grabbed {
                    Some(g) => {
                        if g.eval.poisoned() {
                            drop(g);
                            self.poison_form(key);
                            return None;
                        }
                        Self::read_frontier(&g, &plan.q_atom)
                    }
                    None => {
                        // Contended: the stale answer memo is the no-wait
                        // asset when its age fits the budget; otherwise
                        // block after all (still correct, just slower).
                        if let Some(m) = memo {
                            let age = m.published_at.elapsed();
                            if budget.map_or(true, |b| age <= b) {
                                return Some(self.respond_memo(
                                    key, query, &m, age, started, req_id, d_parse, t_cache,
                                ));
                            }
                        }
                        let g = lock(&plan.form);
                        if g.eval.poisoned() {
                            drop(g);
                            self.poison_form(key);
                            return None;
                        }
                        Self::read_frontier(&g, &plan.q_atom)
                    }
                };
                let (publish_anchor, staleness, tag) = match anchor {
                    // Fully drained at decision time: the frontier serve is
                    // indistinguishable from a fresh read.
                    None => (t_snap, Duration::ZERO, "resident"),
                    Some(a) => (a, a.elapsed(), "stale"),
                };
                Some(self.respond_resident(
                    key,
                    query,
                    query_repr,
                    read,
                    publish_anchor,
                    staleness,
                    tag,
                    started,
                    req_id,
                    d_parse,
                    t_cache,
                ))
            }
        }
    }

    /// Memoize + answer a frontier serve (`cache=resident` at staleness
    /// zero, `cache=stale` otherwise). `publish_anchor` is the staleness
    /// origin recorded on the memo — for a stale serve this is
    /// `pending_since`, NOT now: the payload already misses rows that
    /// arrived at the anchor, so aging must start there.
    #[allow(clippy::too_many_arguments)]
    fn respond_resident(
        &self,
        key: &FormKey,
        query: &Query,
        query_repr: &str,
        read: FrontierRead,
        publish_anchor: Instant,
        staleness: Duration,
        tag: &'static str,
        started: Instant,
        req_id: u64,
        d_parse: Duration,
        t_cache: Instant,
    ) -> Response {
        let trace = {
            let mut cache = lock(&self.cache);
            cache.peek_mut(key).map(|entry| {
                // Memo-tag with the form's *applied* watermarks: if a drain
                // raced us past the query snapshot, the served frontier is
                // the newer (monotone superset) one, and the slot must
                // advertise what was served.
                let watermarks: Vec<(PredRef, usize)> = entry
                    .prepared
                    .support
                    .iter()
                    .map(|p| (p.clone(), read.applied.get(p).copied().unwrap_or(0)))
                    .collect();
                entry.answers = Some(CachedAnswers {
                    query_repr: query_repr.to_string(),
                    watermarks,
                    payload: read.payload.clone(),
                    answers: read.n_answers,
                    frontier: read.frontier,
                    published_at: publish_anchor,
                    stale: !staleness.is_zero(),
                });
                Self::trace_json(query, key, tag, None, &entry.prepared)
            })
        };
        if !staleness.is_zero() {
            self.metrics.stale_serves.inc();
        }
        self.metrics
            .staleness_bound_seconds
            .record_duration(staleness);
        let d_cache = t_cache.elapsed();
        self.metrics.phase_seconds[Phase::Cache as usize].record_duration(d_cache);
        if let Some(trace) = trace {
            *lock(&self.last_trace) = Some(trace);
        }
        self.log_slow_query(
            req_id,
            key,
            tag,
            started,
            &[("parse", d_parse), ("cache", d_cache)],
            None,
        );
        Response::ok()
            .with_info("cache", tag)
            .with_info("answers", read.n_answers)
            .with_info("frontier", read.frontier)
            .with_info("staleness_us", staleness.as_micros())
            .with_info("wall_us", started.elapsed().as_micros())
            .with_payload_text(&read.payload)
    }

    /// Answer straight off the stale answer memo (`cache=stale_answers`):
    /// the no-wait fallback when the form lock is contended. The reported
    /// staleness is the memo's age since its publication anchor.
    #[allow(clippy::too_many_arguments)]
    fn respond_memo(
        &self,
        key: &FormKey,
        query: &Query,
        memo: &StaleMemo,
        age: Duration,
        started: Instant,
        req_id: u64,
        d_parse: Duration,
        t_cache: Instant,
    ) -> Response {
        self.metrics.stale_serves.inc();
        self.metrics.staleness_bound_seconds.record_duration(age);
        let trace = lock(&self.cache)
            .peek_mut(key)
            .map(|entry| Self::trace_json(query, key, "stale_answers", None, &entry.prepared));
        let d_cache = t_cache.elapsed();
        self.metrics.phase_seconds[Phase::Cache as usize].record_duration(d_cache);
        if let Some(trace) = trace {
            *lock(&self.last_trace) = Some(trace);
        }
        self.log_slow_query(
            req_id,
            key,
            "stale_answers",
            started,
            &[("parse", d_parse), ("cache", d_cache)],
            None,
        );
        Response::ok()
            .with_info("cache", "stale_answers")
            .with_info("answers", memo.answers)
            .with_info("frontier", memo.frontier)
            .with_info("staleness_us", age.as_micros())
            .with_info("wall_us", started.elapsed().as_micros())
            .with_payload_text(&memo.payload)
    }

    fn handle_fact(&self, text: &str) -> Response {
        let atom = match parse_atom(text) {
            Ok(a) => a,
            Err(e) => return Response::err(e.render_at("fact")),
        };
        if atom.pred.is_adorned() {
            return Response::err("facts must use base (unadorned) predicates");
        }
        let Some(values) = atom.ground_values() else {
            return Response::err(format!("fact '{atom}' is not ground"));
        };
        {
            let rules = read_lock(&self.rules);
            if rules.0.iter().any(|r| r.head.pred.base() == atom.pred) {
                return Response::err(format!(
                    "{} is derived by rules; facts may only be asserted for EDB predicates",
                    atom.pred
                ));
            }
        }
        let new = {
            let _gate = read_lock(&self.ingest_gate);
            // Log before apply: an acknowledged fact is a durable fact.
            if let Err(resp) = self.wal_append(&[WalOp::Fact(atom.to_string())]) {
                return resp;
            }
            match self.db.insert(&atom.pred, &values) {
                Ok(n) => n,
                Err(e) => return Response::err(e.to_string()),
            }
        };
        if new {
            let cleared = lock(&self.cache).invalidate_edb(&atom.pred);
            self.metrics.invalidations.add(cleared as u64);
            // Then propagation: residents absorb the row as a delta batch
            // instead of losing their state.
            self.drain_residents(std::slice::from_ref(&atom.pred));
        }
        self.maybe_compact();
        Response::ok()
            .with_info("new", new)
            .with_info("pred", &atom.pred)
            .with_info("version", self.db.version())
    }

    fn handle_load(&self, path: &str) -> Response {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return Response::err(format!("cannot read {path}: {e}")),
        };
        let parsed = match parse_program(&text) {
            Ok(p) => p,
            Err(e) => return Response::err(e.render_at(path)),
        };
        if let Err(e) = parsed.program.validate() {
            return Response::err(format!("{path}: {e}"));
        }
        let rules = write_lock(&self.rules);
        let fresh: Vec<Rule> = parsed
            .program
            .rules
            .iter()
            .filter(|r| !rules.0.contains(r))
            .cloned()
            .collect();
        // IDB predicates hold no facts (§1.1): a rule head must not collide
        // with already-stored facts, and loaded facts must stay EDB-only
        // w.r.t. the merged rule set.
        let snapshot = self.db.snapshot();
        for r in &fresh {
            let head = r.head.pred.base();
            if snapshot.count(&head) > 0 {
                return Response::err(format!(
                    "cannot load rule for {head}: facts already stored for it \
                     (IDB predicates hold no facts)"
                ));
            }
        }
        let merged_heads: Vec<PredRef> = rules
            .0
            .iter()
            .chain(fresh.iter())
            .map(|r| r.head.pred.base())
            .collect();
        for pred in parsed.facts.keys() {
            if merged_heads.contains(&pred.base()) {
                return Response::err(format!(
                    "{path}: {pred} is derived by rules; facts may only be loaded \
                     for EDB predicates"
                ));
            }
        }
        // Validation passed. Log everything this LOAD will apply, then
        // apply. The rules lock is released first: the WAL/ingest-gate
        // order must stay `gate → wal` with no rule lock held (compaction
        // takes them in that order too).
        drop(rules);
        let mut ops: Vec<WalOp> = fresh.iter().map(|r| WalOp::Rule(r.to_string())).collect();
        for (pred, tuples) in &parsed.facts {
            for t in tuples {
                ops.push(WalOp::Fact(Atom::fact(pred.clone(), t.clone()).to_string()));
            }
        }

        let (new_rules, total_rules, new_facts, touched) = {
            let _gate = read_lock(&self.ingest_gate);
            if let Err(resp) = self.wal_append(&ops) {
                return resp;
            }
            let mut rules = write_lock(&self.rules);
            // Another LOAD may have raced in while the lock was released;
            // re-filter so duplicates stay out (the WAL tolerates them).
            let fresh: Vec<Rule> = fresh.into_iter().filter(|r| !rules.0.contains(r)).collect();
            let new_rules = fresh.len();
            if new_rules > 0 {
                rules.0.extend(fresh);
                rules.1 = fingerprint_rules(&rules.0);
            }
            let total_rules = rules.0.len();
            drop(rules);

            let mut new_facts = 0usize;
            let mut touched: Vec<PredRef> = Vec::new();
            for (pred, tuples) in &parsed.facts {
                let mut any = false;
                for t in tuples {
                    match self.db.insert(pred, t) {
                        Ok(true) => {
                            new_facts += 1;
                            any = true;
                        }
                        Ok(false) => {}
                        Err(e) => return Response::err(format!("{path}: {e}")),
                    }
                }
                if any {
                    touched.push(pred.clone());
                }
            }
            (new_rules, total_rules, new_facts, touched)
        };
        if !touched.is_empty() {
            let mut cache = lock(&self.cache);
            for p in &touched {
                let cleared = cache.invalidate_edb(p);
                self.metrics.invalidations.add(cleared as u64);
            }
            drop(cache);
            self.drain_residents(&touched);
        }
        self.maybe_compact();
        let mut resp = Response::ok()
            .with_info("rules", total_rules)
            .with_info("new_rules", new_rules)
            .with_info("new_facts", new_facts)
            .with_info("version", self.db.version());
        if parsed.program.query.is_some() {
            resp = resp.with_info("query_ignored", true);
        }
        resp
    }

    /// Convert a resource-limit trip into its coded `ERR` response, with
    /// the partial stats embedded, and record counters + trace event.
    fn limit_response(&self, e: &EngineError) -> Response {
        let (code, kind, counter) = match e {
            EngineError::DeadlineExceeded { .. } => {
                (ErrCode::Deadline, "deadline", &self.metrics.deadline_trips)
            }
            EngineError::BudgetExceeded { .. } => {
                (ErrCode::Budget, "budget", &self.metrics.budget_trips)
            }
            EngineError::IterationLimit { .. } => {
                (ErrCode::Budget, "iterations", &self.metrics.iteration_trips)
            }
            // Cancellation only comes from the shutdown drain.
            _ => (
                ErrCode::Shutdown,
                "shutdown",
                &self.metrics.cancelled_queries,
            ),
        };
        counter.inc();
        let stats = e.partial_stats().copied().unwrap_or_default();
        let detail = format!(
            "{e} (partial: iterations={} facts_derived={} tuples_scanned={})",
            stats.iterations, stats.facts_derived, stats.tuples_scanned
        );
        self.note_limit(kind, &detail);
        Response::err_code(code, detail)
    }

    /// Evaluate a prepared form's static derivation bound and join-cost
    /// hints against a snapshot's live EDB cardinalities. The bound is the
    /// admission ceiling (`ERR bound` when it exceeds the fact budget);
    /// the hints feed [`EvalOptions::cost_hints`].
    fn live_bound(
        prepared: &PreparedProgram,
        snapshot: &DbSnapshot,
    ) -> (u64, Arc<std::collections::BTreeMap<String, u64>>) {
        let cards: std::collections::BTreeMap<String, u64> = prepared
            .bounds
            .edb
            .iter()
            .map(|p| (p.to_string(), snapshot.count(&p.base()) as u64))
            .collect();
        (
            prepared.bounds.eval_total(&cards),
            Arc::new(prepared.bounds.cost_hints(&cards)),
        )
    }

    fn handle_query(&self, text: &str, consistency: Consistency) -> Response {
        let started = Instant::now();
        // Admission control runs before any parsing or optimizer work:
        // under overload the cheapest thing to do with a query is refuse it.
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let _inflight = Decrement(&self.inflight);
        if self.max_inflight > 0 && self.inflight.load(Ordering::Acquire) > self.max_inflight {
            self.metrics.shed_queries.inc();
            self.note_limit(
                "busy",
                &format!("query shed at in-flight budget {}", self.max_inflight),
            );
            return Response::err_code(
                ErrCode::Busy,
                format!(
                    "server at query capacity ({} in flight), retry",
                    self.max_inflight
                ),
            );
        }
        // One id per admitted query; it appears in the slow-query log so a
        // line on stderr can be correlated with client-side observations.
        let req_id = self.metrics.next_request_id();
        let parsed = match parse_program(text) {
            Ok(p) => p,
            Err(e) => return Response::err(e.render_at("query")),
        };
        if !parsed.program.rules.is_empty() || !parsed.facts.is_empty() {
            return Response::err("QUERY takes a single '?- atom.' (no rules or facts)");
        }
        let Some(query) = parsed.program.query else {
            return Response::err("QUERY takes a single '?- atom.'");
        };
        if self
            .fault
            .should_panic_on_query(&query.atom.pred.name.as_str())
        {
            panic!(
                "injected fault: panic during query over {}",
                query.atom.pred
            );
        }
        let adornment = match query_adornment(&query) {
            Ok(a) => a,
            Err(e) => return Response::err(e.to_string()),
        };

        let (rules, fingerprint) = {
            let g = read_lock(&self.rules);
            (g.0.clone(), g.1)
        };
        let program = Program::with_query(rules, query.clone());
        if let Err(e) = program.validate() {
            return Response::err(e.to_string());
        }
        // Parse span: request text → validated, adorned program.
        let d_parse = started.elapsed();
        self.metrics.phase_seconds[Phase::Parse as usize].record_duration(d_parse);
        let key = FormKey {
            fingerprint,
            pred: query.atom.pred.name.as_str(),
            adornment: adornment.to_string(),
        };
        let query_repr = query.atom.to_string();

        // Snapshot before consulting the answer slot: ingestion inserts the
        // fact first and invalidates after, so a slot whose watermarks still
        // match this snapshot cannot be stale. `t_snap` is the staleness
        // anchor for everything served off this snapshot.
        let t_snap = Instant::now();
        let snapshot = self.db.snapshot();
        self.metrics.queries.inc();

        let t_cache = Instant::now();
        let mut cache = lock(&self.cache);
        // `pin` (canonical program + spliced query atom) marks an eligible
        // form whose evaluation should build a ResidentEval instead of a
        // throwaway fixpoint (pinning re-checks residency under the lock).
        #[allow(clippy::type_complexity)]
        let mut resolved: Option<(
            &'static str,
            Program,
            std::collections::BTreeSet<PredRef>,
            Option<(Program, Atom)>,
            Option<(u64, Arc<std::collections::BTreeMap<String, u64>>)>,
        )> = None;
        // Serving plan for live resident state: decided under the cache
        // lock, executed after it drops (lock order — the cache lock is
        // never held while blocking on a form lock).
        let mut plan: Option<ResidentPlan> = None;
        let mut queue_drain = false;
        let mut fallback = false;
        if let Some(entry) = cache.get_mut(&key) {
            entry.hits += 1;
            self.metrics.prepared_hits.inc();
            if let Some(slot) = &entry.answers {
                if slot.query_repr == query_repr
                    && slot.watermarks == snapshot.watermarks_for(&entry.prepared.support)
                {
                    // Serve the memoized payload: no eval, no optimizer,
                    // zero new phase events. Watermark match means no
                    // acknowledged row is missing — staleness zero in any
                    // consistency mode.
                    self.metrics.answer_hits.inc();
                    self.metrics
                        .staleness_bound_seconds
                        .record_duration(Duration::ZERO);
                    let resp = Response::ok()
                        .with_info("cache", "answers")
                        .with_info("answers", slot.answers)
                        .with_info("frontier", slot.frontier)
                        .with_info("staleness_us", 0)
                        .with_info("wall_us", started.elapsed().as_micros())
                        .with_payload_text(&slot.payload);
                    let trace = Self::trace_json(&query, &key, "answers", None, &entry.prepared);
                    drop(cache);
                    let d_cache = t_cache.elapsed();
                    self.metrics.phase_seconds[Phase::Cache as usize].record_duration(d_cache);
                    *lock(&self.last_trace) = Some(trace);
                    self.log_slow_query(
                        req_id,
                        &key,
                        "answers",
                        started,
                        &[("parse", d_parse), ("cache", d_cache)],
                        None,
                    );
                    return resp;
                }
            }
            let eligible = self.resident_forms > 0
                && ResidentEval::supports(&entry.prepared.program)
                && ResidentEval::admits_bound_class(entry.prepared.bound_class);
            if eligible {
                if let (Some(form), Some(q_atom)) = (
                    entry.resident.as_ref(),
                    entry.prepared.instantiate_atom(&query.atom),
                ) {
                    // Decide how to serve live resident state. Lag and the
                    // staleness anchor come from the mirror — no form lock.
                    let lag = snapshot.lag_from(&entry.prepared.support, &entry.applied_mirror);
                    let anchor = entry.pending_since.unwrap_or(t_snap);
                    let staleness_now = anchor.elapsed();
                    let budget = match consistency {
                        Consistency::Bounded(d) => Some(Duration::from_millis(d)),
                        _ => None,
                    };
                    let memo = entry
                        .answers
                        .as_ref()
                        .filter(|s| s.query_repr == query_repr)
                        .map(|s| StaleMemo {
                            payload: s.payload.clone(),
                            answers: s.answers,
                            frontier: s.frontier,
                            published_at: s.published_at,
                        });
                    let decided = match consistency {
                        Consistency::Fresh => ResidentAction::Fresh,
                        // Fully drained: the frontier IS fresh; serve it via
                        // try-lock so this read never queues behind a drain
                        // that is applying even newer rows.
                        _ if lag == 0 => ResidentAction::Stale {
                            anchor: None,
                            memo,
                            budget,
                        },
                        // Defensive: lag without an anchor (should not
                        // happen — drains set `pending_since` before
                        // releasing the cache lock). Correctness first.
                        _ if entry.pending_since.is_none() => ResidentAction::Fresh,
                        Consistency::Any => ResidentAction::Stale {
                            anchor: Some(anchor),
                            memo,
                            budget,
                        },
                        Consistency::Bounded(d) if staleness_now.as_millis() <= u128::from(d) => {
                            ResidentAction::Stale {
                                anchor: Some(anchor),
                                memo,
                                budget,
                            }
                        }
                        Consistency::Bounded(_) => {
                            // Over budget: catch up synchronously only when
                            // the bound polynomial says the drain is cheap;
                            // otherwise refuse and make sure a drain is on
                            // its way.
                            let cost =
                                Self::drain_cost(&entry.prepared, &snapshot, &entry.applied_mirror);
                            if cost <= self.drain_sync_cost {
                                ResidentAction::Fresh
                            } else {
                                if !entry.drain_queued {
                                    entry.drain_queued = true;
                                    queue_drain = true;
                                }
                                ResidentAction::Refuse {
                                    bound_ms: staleness_now.as_millis().min(u128::from(u64::MAX))
                                        as u64,
                                }
                            }
                        }
                    };
                    plan = Some(ResidentPlan {
                        form: Arc::clone(form),
                        support: entry.prepared.support.clone(),
                        q_atom,
                        action: decided,
                    });
                } else if entry.resident.is_none() {
                    // Evicted by the resident LRU, or dropped earlier as
                    // poisoned: recompute from cold and re-pin below — the
                    // lazy rebuild (no background loop required).
                    fallback = true;
                }
            }
            let pin = eligible
                .then(|| {
                    entry
                        .prepared
                        .instantiate_atom(&query.atom)
                        .map(|qa| (entry.prepared.program.clone(), qa))
                })
                .flatten();
            let bound_info = Self::live_bound(&entry.prepared, &snapshot);
            resolved = entry.prepared.instantiate(&query.atom).map(|p| {
                (
                    "hit",
                    p,
                    entry.prepared.support.clone(),
                    pin,
                    Some(bound_info),
                )
            });
        }
        if fallback {
            cache.fallback_recomputes += 1;
            self.metrics.fallback_recomputes.inc();
        }
        if let Some(plan) = plan {
            drop(cache);
            match self.execute_resident_plan(
                plan,
                queue_drain,
                &key,
                &query,
                &query_repr,
                &snapshot,
                t_snap,
                started,
                req_id,
                d_parse,
                t_cache,
            ) {
                Some(resp) => return resp,
                None => {
                    // The plan died under us (propagation poisoned the
                    // state, already cleaned up): recompute from cold this
                    // request; the rebuild is scheduled or lazy.
                    {
                        let mut cache = lock(&self.cache);
                        cache.fallback_recomputes += 1;
                    }
                    self.metrics.fallback_recomputes.inc();
                    fallback = true;
                    cache = lock(&self.cache);
                }
            }
        }
        let (status, eval_program, support, pin, bound_info) = match resolved {
            Some(t) => t,
            None => {
                self.metrics.cache_misses.inc();
                let prepared = match prepare(
                    &program.rules,
                    &query.atom.pred,
                    &adornment,
                    &OptimizerConfig {
                        verify: self.verify,
                        ..OptimizerConfig::default()
                    },
                ) {
                    Ok(p) => p,
                    Err(e) => return Response::err(format!("optimizer: {e}")),
                };
                let entry = cache.insert(key.clone(), prepared);
                let bound_info = Self::live_bound(&entry.prepared, &snapshot);
                match entry.prepared.instantiate(&query.atom) {
                    Some(p) => {
                        let pin = (self.resident_forms > 0
                            && ResidentEval::supports(&entry.prepared.program)
                            && ResidentEval::admits_bound_class(entry.prepared.bound_class))
                        .then(|| {
                            entry
                                .prepared
                                .instantiate_atom(&query.atom)
                                .map(|qa| (entry.prepared.program.clone(), qa))
                        })
                        .flatten();
                        (
                            "miss",
                            p,
                            entry.prepared.support.clone(),
                            pin,
                            Some(bound_info),
                        )
                    }
                    // Defensive: fall back to the unoptimized program; its
                    // support is computed directly so cached answers still
                    // invalidate correctly.
                    None => (
                        "miss",
                        program.clone(),
                        datalog_opt::edb_support(&program),
                        None,
                        None,
                    ),
                }
            }
        };
        drop(cache);
        // Cache span: lock → memoized answers / prepared form / cold
        // prepare. On a cold miss this includes the optimizer run — the
        // cost the prepared-query cache exists to amortize.
        let d_cache = t_cache.elapsed();
        self.metrics.phase_seconds[Phase::Cache as usize].record_duration(d_cache);

        // Bound-aware admission: the prepared form carries a static
        // derivation bound (a polynomial in EDB cardinalities); evaluated
        // against this snapshot's live counts it upper-bounds what the
        // fixpoint can derive. If that certified ceiling already exceeds
        // the fact budget, the budget trip is inevitable — refuse now,
        // before a single evaluation iteration, instead of burning the
        // budget to find out.
        if let (true, Some(budget), Some((bound, _))) =
            (self.bound_admission, self.fact_budget, bound_info.as_ref())
        {
            if *bound > budget {
                self.metrics.admission_rejected.inc();
                let detail = format!(
                    "static derivation bound {bound} facts exceeds fact budget {budget} \
                     at current cardinalities; refused before evaluation"
                );
                self.note_limit("bound", &detail);
                return Response::err_code(ErrCode::Bound, detail);
            }
        }

        let opts = EvalOptions {
            boolean_cut: true,
            // The serving path defaults both on: reordered joins (cheapest
            // order, not source order) and the iteration fan-out. Workers
            // poll the same deadline/cancel the serial path does, so the
            // limit envelope is unchanged.
            reorder_joins: self.reorder_joins,
            threads: self.eval_threads,
            deadline: self
                .deadline_ms
                .map(|ms| started + Duration::from_millis(ms)),
            fact_budget: self.fact_budget,
            cancel: Some(self.cancel.clone()),
            metrics: Some(self.metrics.eval.clone()),
            // Join-reorder cost hints from the bounds analysis, evaluated
            // at this snapshot's cardinalities: ties in the greedy order
            // break toward the predicate with the smaller derivation bound.
            cost_hints: bound_info.as_ref().map(|(_, h)| h.clone()),
            ..EvalOptions::default()
        };
        let t_eval = Instant::now();
        // An eligible form without resident state evaluates by *building*
        // it: `ResidentEval::new` runs the same cold fixpoint, it just
        // keeps its working state for later delta propagation. The input
        // is restricted to the form's support set — the EDB predicates
        // reachable from the query, the only ones that can affect its
        // answers.
        let mut pinned: Option<ResidentEval> = None;
        let (answers, eval_stats) = if let Some((canonical, q_atom)) = &pin {
            let mut input = FactSet::new();
            for pred in &support {
                for row in snapshot.rows(pred) {
                    input.insert(pred.clone(), row);
                }
            }
            match ResidentEval::new(canonical, &input, &opts) {
                Ok(resident) => {
                    let answers = resident.answers(q_atom);
                    let stats = resident.initial_stats();
                    pinned = Some(resident);
                    (answers, stats)
                }
                // A tripped query is answered with its partial stats, NOT
                // memoized, and nothing is pinned.
                Err(e) if e.is_limit() => return self.limit_response(&e),
                Err(e) => return Response::err(format!("evaluation: {e}")),
            }
        } else {
            let facts = snapshot.to_factset();
            match query_answers_full(&eval_program, &facts, &opts) {
                Ok((answers, out)) => (answers, out.stats),
                // A tripped query is answered with its partial stats and NOT
                // memoized: the cache must never serve a truncated table.
                Err(e) if e.is_limit() => return self.limit_response(&e),
                Err(e) => return Response::err(format!("evaluation: {e}")),
            }
        };
        let d_eval = t_eval.elapsed();
        self.metrics.phase_seconds[Phase::Eval as usize].record_duration(d_eval);

        let t_serialize = Instant::now();
        let payload = render_answers(&answers);
        // Frontier identity of this serve: the freshly built resident's
        // version when one was pinned, the DB snapshot version otherwise.
        let frontier = pinned
            .as_ref()
            .map(|r| r.frontier().version)
            .unwrap_or_else(|| snapshot.version());

        let mut cache = lock(&self.cache);
        let trace = cache.get_mut(&key).map(|entry| {
            entry.answers = Some(CachedAnswers {
                query_repr,
                watermarks: snapshot.watermarks_for(&support),
                payload: payload.clone(),
                answers: answers.len(),
                frontier,
                published_at: t_snap,
                stale: false,
            });
            Self::trace_json(
                &query,
                &key,
                status,
                (status == "miss").then_some(()),
                &entry.prepared,
            )
        });
        if let Some(resident) = pinned {
            // Pin unless a concurrent query beat us to it. `applied`
            // records the snapshot this state was built from, so the next
            // catch-up starts exactly where construction stopped.
            if cache.get_mut(&key).is_some_and(|e| e.resident.is_none()) {
                let applied = support
                    .iter()
                    .map(|p| (p.clone(), snapshot.count(p)))
                    .collect();
                let pinned_now = cache.pin_resident(
                    &key,
                    ResidentForm {
                        eval: resident,
                        applied,
                    },
                );
                // A re-pin after eviction or poisoning IS the lazy rebuild
                // (satellite of the self-healing loop): count it.
                if pinned_now && fallback {
                    self.metrics.resident_rebuilds.inc();
                }
            }
        }
        drop(cache);
        if let Some(trace) = trace {
            *lock(&self.last_trace) = Some(trace);
        }
        let d_serialize = t_serialize.elapsed();
        self.metrics.phase_seconds[Phase::Serialize as usize].record_duration(d_serialize);
        self.log_slow_query(
            req_id,
            &key,
            status,
            started,
            &[
                ("parse", d_parse),
                ("cache", d_cache),
                ("eval", d_eval),
                ("serialize", d_serialize),
            ],
            Some(&eval_stats),
        );

        self.metrics
            .staleness_bound_seconds
            .record_duration(Duration::ZERO);
        Response::ok()
            .with_info("cache", status)
            .with_info("answers", answers.len())
            .with_info("frontier", frontier)
            .with_info("staleness_us", 0)
            .with_info("wall_us", started.elapsed().as_micros())
            .with_payload_text(&payload)
    }

    /// Emit one structured JSON line on stderr when a query's wall time
    /// crosses the `--slow-query-ms` threshold. One line per slow query,
    /// machine-parseable, with the request id, form identity, cache
    /// outcome, per-phase breakdown, and (when evaluation ran) the
    /// engine's [`EvalStats`].
    fn log_slow_query(
        &self,
        req_id: u64,
        key: &FormKey,
        cache: &str,
        started: Instant,
        phases: &[(&str, Duration)],
        stats: Option<&EvalStats>,
    ) {
        let Some(threshold_ms) = self.slow_query_ms else {
            return;
        };
        let wall = started.elapsed();
        if wall.as_millis() < u128::from(threshold_ms) {
            return;
        }
        self.metrics.slow_queries.inc();
        let mut phase_doc = Json::obj();
        for (name, d) in phases {
            phase_doc = phase_doc.with(name, d.as_micros());
        }
        let mut doc = Json::obj()
            .with("slow_query", true)
            .with("req_id", req_id)
            .with("pred", key.pred.as_str())
            .with("adornment", key.adornment.as_str())
            .with("cache", cache)
            .with("threshold_ms", threshold_ms)
            .with("wall_us", wall.as_micros())
            .with("phases_us", phase_doc);
        if let Some(s) = stats {
            doc = doc.with(
                "stats",
                Json::obj()
                    .with("iterations", s.iterations)
                    .with("facts_derived", s.facts_derived)
                    .with("derivations", s.derivations)
                    .with("duplicates", s.duplicates)
                    .with("tuples_scanned", s.tuples_scanned)
                    .with("index_probes", s.index_probes),
            );
        }
        eprintln!("{doc}");
    }

    /// The `TRACE` document for one query. `new_events` holds the phase
    /// events the optimizer emitted *for this request* — the full trace on
    /// a cold miss, empty on any cache hit (the observable promised by the
    /// prepared-query cache).
    fn trace_json(
        query: &Query,
        key: &FormKey,
        status: &str,
        fresh: Option<()>,
        prepared: &PreparedProgram,
    ) -> Json {
        let new_events: Vec<Json> = if fresh.is_some() {
            prepared.report.events().map(|e| e.to_json()).collect()
        } else {
            Vec::new()
        };
        Json::obj()
            .with("query", query.to_string())
            .with(
                "form",
                Json::obj()
                    .with("fingerprint", format!("{:016x}", key.fingerprint))
                    .with("pred", key.pred.as_str())
                    .with("adornment", key.adornment.as_str()),
            )
            .with("cache", status)
            .with("new_events", Json::Arr(new_events))
            .with("prepared_report", prepared.report.to_json())
    }

    /// Total sealed storage runs across the shared EDB and every resident
    /// form's saturated database. Residents are sampled with `try_lock` —
    /// a form mid-drain is skipped rather than blocking the scrape (the
    /// gauge is a point-in-time sample either way).
    fn storage_run_total(&self) -> u64 {
        let mut runs = self.db.storage_runs() as u64;
        let residents: Vec<Arc<Mutex<ResidentForm>>> = {
            let mut cache = lock(&self.cache);
            cache
                .iter_mut()
                .filter_map(|(_, e)| e.resident.as_ref().map(Arc::clone))
                .collect()
        };
        for form in residents {
            if let Ok(g) = form.try_lock() {
                runs += g.eval.storage_runs() as u64;
            }
        }
        runs
    }

    fn handle_stats(&self) -> Response {
        self.metrics.sync_storage(self.storage_run_total());
        let (rule_count, fingerprint) = {
            let g = read_lock(&self.rules);
            (g.0.len(), g.1)
        };
        let cache = lock(&self.cache);
        let wal_doc = {
            let guard = lock(&self.wal);
            match guard.as_ref() {
                Some(wal) => Json::obj()
                    .with("appended", wal.appended)
                    .with("since_snapshot", wal.since_snapshot())
                    .with("snapshots", wal.snapshots),
                None => Json::Null,
            }
        };
        // STATS reads the same atomics the METRICS registry renders — one
        // bookkeeping path, two readouts.
        let m = &self.metrics;
        let doc = Json::obj()
            .with("proto", PROTOCOL_VERSION)
            .with("rules", rule_count)
            .with("fingerprint", format!("{fingerprint:016x}"))
            .with("preds", self.db.pred_count())
            .with("facts", self.db.total_facts())
            .with("version", self.db.version())
            .with("queries", m.queries.get())
            .with("prepared_forms", cache.len())
            .with("prepared_hits", cache.total_hits())
            .with("cache_misses", m.cache_misses.get())
            .with("answer_hits", m.answer_hits.get())
            .with("invalidations", cache.invalidations)
            .with("resident_forms", cache.resident_count())
            .with(
                "incremental_applied_facts",
                m.incremental_applied_facts.get(),
            )
            .with("fallback_recomputes", cache.fallback_recomputes)
            .with("resident_rebuilds", m.resident_rebuilds.get())
            .with("resident_poisonings", m.resident_poisonings.get())
            .with("stale_serves", m.stale_serves.get())
            .with("stale_refusals", m.stale_refusals.get())
            .with("background_drains", m.background_drains.get())
            .with("threads", self.threads)
            .with("inflight", self.inflight.load(Ordering::Acquire) as u64)
            .with("shed_connections", m.shed_conns.get())
            .with("shed_queries", m.shed_queries.get())
            .with("deadline_trips", m.deadline_trips.get())
            .with("budget_trips", m.budget_trips.get())
            .with("admission_rejected", m.admission_rejected.get())
            .with("iteration_trips", m.iteration_trips.get())
            .with("cancelled_queries", m.cancelled_queries.get())
            .with("panics_recovered", m.panics_recovered.get())
            .with("wal_errors", m.wal_errors.get())
            .with("faults_injected", self.fault.fired())
            .with(
                "storage",
                Json::obj()
                    .with("runs", m.storage_runs.get() as u64)
                    .with("bloom_probes", m.bloom_probes.get())
                    .with("bloom_skips", m.bloom_skips.get())
                    .with("consolidations", m.storage_consolidations.get())
                    .with("index_rebuilds", m.index_rebuilds.get()),
            )
            .with("wal", wal_doc)
            .with("recovery", self.recovery.clone().unwrap_or(Json::Null))
            .with("limit_events", Json::Arr(lock(&self.limit_events).clone()));
        Response::ok().with_payload_text(&doc.to_string())
    }

    /// `METRICS [JSON]`: scrape the registry. The point-in-time gauges
    /// (in-flight queries, live connections, fact and cache sizes) are
    /// sampled here rather than maintained on the hot path — a scrape is
    /// the only reader, so paying at scrape time keeps request handling
    /// free of gauge traffic.
    fn handle_metrics(&self, json: bool) -> Response {
        self.metrics.sync_storage(self.storage_run_total());
        self.metrics
            .inflight
            .set(self.inflight.load(Ordering::Acquire) as i64);
        self.metrics
            .active_conns
            .set(self.active_conns.load(Ordering::Acquire) as i64);
        self.metrics.facts.set(self.db.total_facts() as i64);
        {
            let cache = lock(&self.cache);
            self.metrics.prepared_forms.set(cache.len() as i64);
            self.metrics
                .resident_forms
                .set(cache.resident_count() as i64);
        }
        let (format, body) = if json {
            ("json", self.metrics.to_json().to_string())
        } else {
            ("prometheus", self.metrics.render_prometheus())
        };
        Response::ok()
            .with_info("format", format)
            .with_payload_text(&body)
    }

    fn handle_trace(&self) -> Response {
        match &*lock(&self.last_trace) {
            Some(doc) => Response::ok().with_payload_text(&doc.to_string()),
            None => Response::err("no query has been evaluated yet"),
        }
    }
}

/// Render an answer set exactly as `xdl run` prints it: `true`/`false`
/// for boolean (zero-column) queries, otherwise the column header line
/// followed by the sorted rows.
pub fn render_answers(answers: &AnswerSet) -> String {
    match answers.as_bool() {
        Some(b) => format!("{b}\n"),
        None => answers.to_string(),
    }
}

/// A running server: listener address plus worker threads.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start the worker threads, recovering from the WAL first
    /// when one is configured. Returns once the listener is accepting (the
    /// bound address is available immediately, which is what tests and the
    /// smoke script poll for).
    pub fn spawn(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;
        let threads = cfg.threads.max(1);
        let state = Arc::new(ServerState::from_config(cfg)?);
        let listener = Arc::new(listener);
        let mut workers: Vec<JoinHandle<()>> = (0..threads)
            .map(|_| {
                let listener = Arc::clone(&listener);
                let state = Arc::clone(&state);
                std::thread::spawn(move || accept_loop(&listener, &state))
            })
            .collect();
        // Background maintenance (deferred drains, rebuild backoff) rides
        // in the same worker pool lifecycle: joined on shutdown.
        if let Some(h) = state.start_maintenance() {
            workers.push(h);
        }
        Ok(Server {
            addr,
            state,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (for in-process drivers like the bench harness).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Request a draining shutdown and wake any accept-blocked workers.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
        for _ in 0..self.workers.len() {
            // One nudge per worker: a throwaway connection unblocks accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Block until every worker has exited (i.e. shutdown was requested and
    /// in-flight connections drained).
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.is_shutdown() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.is_shutdown() {
                    return;
                }
                let active = state.active_conns.fetch_add(1, Ordering::AcqRel) + 1;
                if active > state.max_conns {
                    state.active_conns.fetch_sub(1, Ordering::AcqRel);
                    state.metrics.shed_conns.inc();
                    state.note_limit(
                        "busy",
                        &format!("connection shed at limit {}", state.max_conns),
                    );
                    shed_connection(stream);
                    continue;
                }
                serve_connection(stream, state);
                state.active_conns.fetch_sub(1, Ordering::AcqRel);
            }
            Err(_) => {
                if state.is_shutdown() {
                    return;
                }
            }
        }
    }
}

/// Refuse a connection over the limit: one coded line, then close. The
/// client sees `ERR busy ...` instead of an unexplained hang in the
/// accept queue.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let resp = Response::err_code(ErrCode::Busy, "connection limit reached, retry later");
    let mut buf = Vec::with_capacity(64);
    let _ = resp.write_to(&mut buf);
    let _ = stream.write_all(&buf);
}

/// Serve one client until it disconnects, errors, or the server shuts
/// down. A short read timeout lets the worker notice shutdown while a
/// client idles.
fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    // Responses are written as one buffered chunk; without TCP_NODELAY the
    // line-per-write pattern would stall ~40ms per exchange on loopback
    // (Nagle vs. delayed ACK).
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let resp = match Request::parse(trimmed) {
            Ok(req) => {
                let resp = state.handle_safely(&req);
                if req == Request::Shutdown {
                    let _ = write_buffered(&resp, &mut writer);
                    // Wake every accept()-blocked worker so join() returns.
                    // The accepted stream's local address IS the listening
                    // address, so a throwaway connection per worker suffices.
                    if let Ok(addr) = writer.local_addr() {
                        for _ in 0..state.threads {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                    return;
                }
                resp
            }
            Err(msg) => Response::err(msg),
        };
        if write_buffered(&resp, &mut writer).is_err() {
            return;
        }
        // Draining: this request got its complete response; the connection
        // closes so the worker can exit.
        if state.is_shutdown() {
            return;
        }
    }
}

/// Serialize the whole response into one buffer and send it with a single
/// `write_all`, so a multi-line payload costs one packet, not one per line.
fn write_buffered(resp: &Response, writer: &mut TcpStream) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(256);
    resp.write_to(&mut buf)?;
    writer.write_all(&buf)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique-per-test temp dir, removed on drop (even on panic).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> TempDir {
            let p = std::env::temp_dir().join(format!(
                "xdl-server-{}-{name}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn render_matches_xdl_run_shapes() {
        let mut boolean = AnswerSet::default();
        assert_eq!(render_answers(&boolean), "false\n");
        boolean.rows.insert(vec![]);
        assert_eq!(render_answers(&boolean), "true\n");
        let mut unary = AnswerSet {
            columns: vec!["X".into()],
            rows: Default::default(),
        };
        unary.rows.insert(vec![datalog_ast::Value::int(1)]);
        unary.rows.insert(vec![datalog_ast::Value::int(2)]);
        assert_eq!(render_answers(&unary), "X\n1\n2\n");
    }

    #[test]
    fn state_rejects_idb_facts_and_bad_queries() {
        let state = ServerState::new(8, 1);
        let dir = TempDir::new("idb");
        let file = dir.0.join("tc.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\n").unwrap();
        let resp = state.handle(&Request::Load(file.display().to_string()));
        assert!(resp.ok, "{}", resp.error);

        let resp = state.handle(&Request::Fact("a(1, 2).".into()));
        assert!(!resp.ok);
        assert!(resp.error.contains("derived by rules"), "{}", resp.error);

        let resp = state.handle(&Request::Fact("p(1, X).".into()));
        assert!(!resp.ok);
        assert!(resp.error.contains("not ground"), "{}", resp.error);

        let resp = state.handle(&Request::query("?- a(X, _"));
        assert!(!resp.ok);
        assert!(resp.error.starts_with("query:1:"), "{}", resp.error);

        let resp = state.handle(&Request::query("?- a(X, _)."));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.get("cache"), Some("miss"));
        assert_eq!(resp.payload, vec!["X", "1"]);
    }

    #[test]
    fn wal_state_recovers_facts_and_rules() {
        let dir = TempDir::new("walrec");
        let cfg = ServerConfig {
            wal_dir: Some(dir.0.clone()),
            ..ServerConfig::default()
        };
        let rules = dir.0.join("tc.dl");
        std::fs::write(
            &rules,
            "a(X, Y) :- p(X, Y).\na(X, Y) :- p(X, Z), a(Z, Y).\n",
        )
        .unwrap();
        {
            let state = ServerState::from_config(&cfg).unwrap();
            assert!(state.handle(&Request::Load(rules.display().to_string())).ok);
            assert!(state.handle(&Request::Fact("p(1, 2).".into())).ok);
            assert!(state.handle(&Request::Fact("p(2, 3).".into())).ok);
            // No shutdown, no flush call: durability must not depend on a
            // clean exit.
        }
        let state = ServerState::from_config(&cfg).unwrap();
        let rec = state.recovery().expect("recovery info present");
        let rec = rec.to_string();
        assert!(rec.contains("\"applied\":4"), "{rec}");
        let resp = state.handle(&Request::query("?- a(1, X)."));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.payload, vec!["X", "2", "3"]);
    }

    #[test]
    fn query_deadline_returns_coded_error_and_is_not_memoized() {
        let dir = TempDir::new("deadline");
        let file = dir.0.join("path.dl");
        let mut text = String::from(
            "a(X, Y) :- p(X, Y).\na(X, Y) :- p(X, Z), a(Z, Y).\n\
             big(X, Y, Z, W) :- a(X, Y), a(Z, W).\n",
        );
        for i in 0..40 {
            for j in 0..40 {
                text.push_str(&format!("p({i}, {j}).\n"));
            }
        }
        std::fs::write(&file, &text).unwrap();
        let state = ServerState::new(8, 1).with_limits(Some(5), None);
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        let resp = state.handle(&Request::query("?- big(1, X, Y, Z)."));
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrCode::Deadline), "{}", resp.error);
        assert!(resp.error.contains("partial:"), "{}", resp.error);
        // The trip is counted and the STATS doc shows it.
        let stats = state.handle(&Request::Stats);
        assert!(
            stats.payload_text().contains("\"deadline_trips\":1"),
            "{}",
            stats.payload_text()
        );
        assert!(
            stats.payload_text().contains("\"kind\":\"deadline\""),
            "limit event ring should hold the trip: {}",
            stats.payload_text()
        );
    }

    #[test]
    fn limit_event_ring_capacity_is_configurable_and_drops_are_counted() {
        let state = ServerState::from_config(&ServerConfig {
            limit_events: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        for i in 0..5 {
            state.note_limit("busy", &format!("event {i}"));
        }
        // The ring holds only the newest two events...
        let ring = lock(&state.limit_events);
        assert_eq!(ring.len(), 2);
        let held = Json::Arr(ring.clone()).to_string();
        drop(ring);
        assert!(
            held.contains("event 3") && held.contains("event 4"),
            "{held}"
        );
        // ...and the three evictions are visible as a metric, not silent.
        assert_eq!(state.metrics.limit_events_dropped.get(), 3);
        let scrape = state.metrics.render_prometheus();
        assert!(
            scrape.contains("xdl_limit_events_dropped_total 3"),
            "{scrape}"
        );
    }

    #[test]
    fn metrics_verb_renders_both_formats_and_samples_gauges() {
        let state = ServerState::new(2, 1);
        let dir = TempDir::new("metrics-verb");
        let file = dir.0.join("tc.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\np(3, 4).\n").unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        assert!(state.handle(&Request::query("?- a(X, _).")).ok);

        let prom = state.handle(&Request::Metrics { json: false });
        assert!(prom.ok);
        assert_eq!(
            prom.info_map().get("format").map(String::as_str),
            Some("prometheus")
        );
        let text = prom.payload_text();
        assert!(
            text.contains("xdl_requests_total{verb=\"QUERY\"} 1"),
            "{text}"
        );
        // Gauges are sampled at scrape time from the live structures.
        assert!(text.contains("xdl_facts 2"), "{text}");
        assert!(text.contains("xdl_prepared_forms 1"), "{text}");

        let json = state.handle(&Request::Metrics { json: true });
        assert!(json.ok);
        assert_eq!(
            json.info_map().get("format").map(String::as_str),
            Some("json")
        );
        assert!(json.payload_text().contains("\"xdl_facts\""));
    }

    #[test]
    fn shed_query_at_inflight_budget_zero_means_unlimited() {
        let state = ServerState::new(8, 1);
        // max_inflight == 0: a query is admitted (and fails on substance,
        // not on admission).
        let resp = state.handle(&Request::query("?- nosuch(X)."));
        assert!(resp.code.is_none(), "{}", resp.error);
    }

    #[test]
    fn panic_in_handler_is_contained() {
        let fault = Arc::new(FaultPlan::new());
        let state = ServerState::new(8, 1).with_fault(Arc::clone(&fault));
        let dir = TempDir::new("panic");
        let file = dir.0.join("tc.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\n").unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);

        fault.panic_on_query("a");
        let resp = state.handle_safely(&Request::query("?- a(X, _)."));
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrCode::Internal), "{}", resp.error);
        assert!(resp.error.contains("injected fault"), "{}", resp.error);

        // The fault is one-shot: the same query now succeeds, proving the
        // state survived the unwinding.
        let resp = state.handle_safely(&Request::query("?- a(X, _)."));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.payload, vec!["X", "1"]);
        let stats = state.handle(&Request::Stats);
        assert!(
            stats.payload_text().contains("\"panics_recovered\":1"),
            "{}",
            stats.payload_text()
        );
    }

    #[test]
    fn serving_path_defaults_to_reordered_joins() {
        // The prepared/serving path always wants the cheapest join order;
        // only `xdl run` keeps source order (for experiment counters).
        // Pin the default so a regression here is loud.
        assert!(ServerConfig::default().reorder_joins);
        let state = ServerState::new(8, 1);
        assert!(state.reorder_joins, "fresh state serves reordered joins");
        let cfg = ServerConfig {
            reorder_joins: false,
            ..ServerConfig::default()
        };
        let state = ServerState::from_config(&cfg).unwrap();
        assert!(!state.reorder_joins, "--no-reorder must reach eval");
    }

    #[test]
    fn queries_parallel_and_serial_agree_byte_for_byte() {
        let answers_at = |threads: usize| {
            let state = ServerState::from_config(&ServerConfig {
                eval_threads: threads,
                ..ServerConfig::default()
            })
            .unwrap();
            let dir = TempDir::new(&format!("par{threads}"));
            let file = dir.0.join("tc.dl");
            let mut src = String::from("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n");
            for i in 0..40 {
                src.push_str(&format!("p({}, {}).\n", i, (i * 7 + 3) % 40));
            }
            std::fs::write(&file, src).unwrap();
            assert!(state.handle(&Request::Load(file.display().to_string())).ok);
            let resp = state.handle(&Request::query("?- a(X, _)."));
            assert!(resp.ok, "{}", resp.error);
            resp.payload_text()
        };
        let serial = answers_at(1);
        assert_eq!(
            serial,
            answers_at(4),
            "server answers must not depend on eval_threads"
        );
    }

    #[test]
    fn eval_threads_default_to_available_parallelism() {
        // Satellite: an unconfigured server should use the machine, not a
        // hardcoded 1. Computed from the environment at runtime (tests run
        // in parallel; mutating the env here would race).
        let expected = std::env::var("XDL_EVAL_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        assert_eq!(ServerConfig::default().eval_threads, expected);
        let state = ServerState::from_config(&ServerConfig::default()).unwrap();
        assert_eq!(state.eval_threads, expected.max(1));
    }

    /// The tentpole identity: with resident forms enabled, every QUERY
    /// after every FACT batch must be byte-identical to the
    /// invalidate-and-recompute server — at 1 and at 4 eval threads.
    #[test]
    fn resident_serving_is_byte_identical_to_cold_recompute() {
        let run = |eval_threads: usize, resident_forms: usize| -> Vec<String> {
            let state = ServerState::from_config(&ServerConfig {
                eval_threads,
                resident_forms,
                ..ServerConfig::default()
            })
            .unwrap();
            let dir = TempDir::new(&format!("res-{eval_threads}-{resident_forms}"));
            let file = dir.0.join("tc.dl");
            let mut src = String::from("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n");
            for i in 0..20 {
                src.push_str(&format!("p({}, {}).\n", i, (i * 3 + 1) % 20));
            }
            std::fs::write(&file, src).unwrap();
            assert!(state.handle(&Request::Load(file.display().to_string())).ok);
            let q = "?- a(X, _).";
            let first = state.handle(&Request::query(q));
            assert!(first.ok, "{}", first.error);
            assert_eq!(first.get("cache"), Some("miss"));
            let mut payloads = vec![first.payload_text()];
            for batch in 0..4u32 {
                for j in 0..3u32 {
                    let v = 100 + batch * 10 + j;
                    let resp = state.handle(&Request::Fact(format!("p({}, {}).", v, v + 1)));
                    assert!(resp.ok, "{}", resp.error);
                }
                let resp = state.handle(&Request::query(q));
                assert!(resp.ok, "{}", resp.error);
                if resident_forms > 0 {
                    assert_eq!(
                        resp.get("cache"),
                        Some("resident"),
                        "ingestion must propagate, not evict, the resident"
                    );
                }
                payloads.push(resp.payload_text());
            }
            payloads
        };
        let cold = run(1, 0);
        assert_eq!(cold, run(1, 8), "resident must match recompute");
        assert_eq!(cold, run(4, 8), "and be thread-count independent");
    }

    #[test]
    fn evicted_resident_falls_back_to_cold_and_repins() {
        // --resident-forms=1 with two eligible forms: each query of one
        // form evicts the other's resident, so the fallback counter
        // advances deterministically while answers stay correct.
        let state = ServerState::from_config(&ServerConfig {
            resident_forms: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let dir = TempDir::new("fallback");
        let file = dir.0.join("two.dl");
        std::fs::write(
            &file,
            "a(X, Y) :- p(X, Y).\nb(X, Y) :- q(X, Y).\np(1, 2).\nq(3, 4).\n",
        )
        .unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        assert_eq!(
            state.handle(&Request::query("?- a(X, _).")).get("cache"),
            Some("miss")
        );
        assert_eq!(
            state.handle(&Request::query("?- b(X, _).")).get("cache"),
            Some("miss")
        );
        // Same forms, fresh constants (a memo hit would hide the resident
        // path): each finds its resident evicted by the other's pin.
        let resp = state.handle(&Request::query("?- a(1, _)."));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.get("cache"), Some("hit"), "fallback recomputes");
        assert_eq!(resp.payload_text(), "true\n");
        let resp = state.handle(&Request::query("?- b(3, _)."));
        assert_eq!(resp.get("cache"), Some("hit"));
        assert_eq!(resp.payload_text(), "true\n");
        let stats = state.handle(&Request::Stats).payload_text();
        assert!(stats.contains("\"fallback_recomputes\":2"), "{stats}");
        assert!(stats.contains("\"resident_forms\":1"), "{stats}");
        // The fallback re-pinned: the same constant-query now serves from
        // the (re-)resident frontier.
        let resp = state.handle(&Request::query("?- b(4, _)."));
        assert_eq!(resp.get("cache"), Some("resident"));
        assert_eq!(resp.payload_text(), "false\n");
    }

    #[test]
    fn memo_watermarks_survive_unrelated_ingestion_without_residents() {
        // Satellite: with pinning disabled the seed behavior is intact —
        // memoized answers are validated against the per-relation
        // watermarks of the form's own EDB support set, so a fact for q
        // leaves the form over p serving from its memo slot.
        let state = ServerState::from_config(&ServerConfig {
            resident_forms: 0,
            ..ServerConfig::default()
        })
        .unwrap();
        let dir = TempDir::new("memo-marks");
        let file = dir.0.join("two.dl");
        std::fs::write(
            &file,
            "a(X, Y) :- p(X, Y).\nb(X, Y) :- q(X, Y).\np(1, 2).\nq(3, 4).\n",
        )
        .unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        for q in ["?- a(X, _).", "?- b(X, _)."] {
            assert!(state.handle(&Request::query(q)).ok);
        }
        assert!(state.handle(&Request::Fact("q(5, 6).".into())).ok);
        assert_eq!(
            state.handle(&Request::query("?- a(X, _).")).get("cache"),
            Some("answers"),
            "a's support watermarks did not move"
        );
        assert_eq!(
            state.handle(&Request::query("?- b(X, _).")).get("cache"),
            Some("hit"),
            "b re-evaluates (and without residents never serves 'resident')"
        );
    }

    #[test]
    fn deferred_drains_serve_stale_with_a_bound_and_fresh_catches_up() {
        // `drain_sync_cost: 0` forces every ingest-side drain to defer; no
        // maintenance thread runs on a plain state, so the lag sits until
        // a reader resolves it.
        let state = ServerState::from_config(&ServerConfig {
            resident_forms: 8,
            drain_sync_cost: 0,
            ..ServerConfig::default()
        })
        .unwrap();
        let dir = TempDir::new("stale-defer");
        let file = dir.0.join("s.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\n").unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        let q = "?- a(X, _).";
        let first = state.handle(&Request::query(q));
        assert_eq!(first.get("cache"), Some("miss"));
        assert_eq!(first.get("staleness_us"), Some("0"));
        let frontier_v1 = first.get("frontier").unwrap().to_string();
        assert!(state.handle(&Request::Fact("p(3, 4).".into())).ok);
        // `any` reads the published frontier: the old payload, a non-zero
        // staleness bound, and the pre-ingest frontier version.
        let stale = state.handle(&Request::Query {
            text: q.into(),
            consistency: Consistency::Any,
        });
        assert!(stale.ok, "{}", stale.error);
        assert_eq!(stale.get("cache"), Some("stale"));
        assert_eq!(stale.payload_text(), first.payload_text());
        assert_eq!(stale.get("frontier"), Some(frontier_v1.as_str()));
        let bound_us: u64 = stale.get("staleness_us").unwrap().parse().unwrap();
        assert!(bound_us > 0, "lagging serve must report a bound");
        // A generous budget also serves stale; the bound never shrinks
        // below the true lag age.
        let bounded = state.handle(&Request::Query {
            text: q.into(),
            consistency: Consistency::Bounded(60_000),
        });
        assert_eq!(bounded.get("cache"), Some("stale"));
        // `fresh` (the default) catches up synchronously regardless of
        // drain cost and is byte-identical to a cold recompute.
        let fresh = state.handle(&Request::query(q));
        assert!(fresh.ok, "{}", fresh.error);
        assert_eq!(fresh.get("cache"), Some("resident"));
        assert_eq!(fresh.get("staleness_us"), Some("0"));
        assert_eq!(fresh.payload_text(), "X\n1\n3\n");
        assert_ne!(fresh.get("frontier"), Some(frontier_v1.as_str()));
        // Fully drained again: a bounded read is indistinguishable from
        // fresh and reports staleness zero.
        let drained = state.handle(&Request::Query {
            text: q.into(),
            consistency: Consistency::Any,
        });
        assert_eq!(drained.get("staleness_us"), Some("0"));
        let stats = state.handle(&Request::Stats).payload_text();
        assert!(stats.contains("\"stale_serves\":2"), "{stats}");
    }

    #[test]
    fn over_budget_bounded_reads_refuse_with_the_stale_code() {
        let state = ServerState::from_config(&ServerConfig {
            resident_forms: 8,
            drain_sync_cost: 0,
            ..ServerConfig::default()
        })
        .unwrap();
        let dir = TempDir::new("stale-refuse");
        let file = dir.0.join("s.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\n").unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        let q = "?- a(X, _).";
        assert!(state.handle(&Request::query(q)).ok);
        assert!(state.handle(&Request::Fact("p(3, 4).".into())).ok);
        std::thread::sleep(Duration::from_millis(15));
        // 15ms of lag against a 1ms budget, with synchronous catch-up
        // priced out: the only honest answer is a refusal carrying the
        // current bound.
        let resp = state.handle(&Request::Query {
            text: q.into(),
            consistency: Consistency::Bounded(1),
        });
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrCode::Stale), "{}", resp.error);
        let bound = resp.stale_bound_ms().expect("refusal carries its bound");
        assert!(bound >= 10, "bound {bound}ms must reflect the real lag");
        // The same read with mode fresh still succeeds (sync catch-up is
        // mandatory there), proving the refusal is budget-driven.
        let fresh = state.handle(&Request::query(q));
        assert!(fresh.ok, "{}", fresh.error);
        assert_eq!(fresh.payload_text(), "X\n1\n3\n");
        let stats = state.handle(&Request::Stats).payload_text();
        assert!(stats.contains("\"stale_refusals\":1"), "{stats}");
    }

    #[test]
    fn poisoned_resident_rebuilds_lazily_without_restart() {
        // A failing drain poisons the resident; with no background loop
        // the next eligible QUERY must rebuild and re-pin it (counted as a
        // rebuild), not fall back forever.
        let fault = Arc::new(FaultPlan::new());
        let state = ServerState::from_config(&ServerConfig {
            resident_forms: 8,
            fault: Arc::clone(&fault),
            ..ServerConfig::default()
        })
        .unwrap();
        let dir = TempDir::new("poison-lazy");
        let file = dir.0.join("s.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\n").unwrap();
        assert!(state.handle(&Request::Load(file.display().to_string())).ok);
        let q = "?- a(X, _).";
        assert!(state.handle(&Request::query(q)).ok);
        fault.fail_drains(1);
        // The inline ingest-side drain hits the armed fault and poisons
        // the form.
        assert!(state.handle(&Request::Fact("p(3, 4).".into())).ok);
        let stats = state.handle(&Request::Stats).payload_text();
        assert!(stats.contains("\"resident_poisonings\":1"), "{stats}");
        assert!(stats.contains("\"resident_forms\":0"), "{stats}");
        // Next query: cold recompute, correct answers, resident re-pinned.
        let resp = state.handle(&Request::query(q));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.get("cache"), Some("hit"));
        assert_eq!(resp.payload_text(), "X\n1\n3\n");
        let stats = state.handle(&Request::Stats).payload_text();
        assert!(stats.contains("\"resident_rebuilds\":1"), "{stats}");
        assert!(stats.contains("\"resident_forms\":1"), "{stats}");
        // And the healed resident serves (fresh constants dodge the memo).
        let resp = state.handle(&Request::query("?- a(3, _)."));
        assert_eq!(resp.get("cache"), Some("resident"));
        assert_eq!(resp.payload_text(), "true\n");
    }

    #[test]
    fn draining_state_refuses_new_work_with_shutdown_code() {
        let state = ServerState::new(8, 1);
        assert!(state.handle(&Request::Shutdown).ok);
        let resp = state.handle(&Request::query("?- a(X)."));
        assert_eq!(resp.code, Some(ErrCode::Shutdown), "{}", resp.error);
        let resp = state.handle(&Request::Fact("p(1).".into()));
        assert_eq!(resp.code, Some(ErrCode::Shutdown), "{}", resp.error);
        // STATS still answers during the drain.
        assert!(state.handle(&Request::Stats).ok);
    }
}

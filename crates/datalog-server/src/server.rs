//! The server: shared state, request handling, and the accept loop.
//!
//! N worker threads block in `accept()` on one shared listener; each
//! connection is served to completion by the worker that accepted it, so
//! the server handles up to N concurrent clients. All workers share one
//! [`ServerState`]:
//!
//! * the rule set (plus its fingerprint), guarded by an `RwLock` — queries
//!   read it, `LOAD` extends it;
//! * the EDB in a [`SharedDatabase`]: writers ingest while readers evaluate
//!   against [`DbSnapshot`]s, never blocking each other beyond per-access
//!   row locks;
//! * the [`PreparedCache`] behind a `Mutex` — held across a cold `prepare`
//!   (optimization is the expensive, memoized step; serializing it
//!   deduplicates concurrent cold misses of the same form);
//! * the last query's trace, served by `TRACE`.
//!
//! The paper's IDB/EDB convention (§1.1: the IDB holds no facts) is
//! enforced at the boundary: `FACT` refuses predicates derived by rules,
//! `LOAD` refuses rules whose head predicate already has stored facts.
//! This keeps every optimization the cache reuses valid — query
//! equivalence of the optimized program is only guaranteed on IDB-empty
//! inputs.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use datalog_adorn::query_adornment;
use datalog_ast::{parse_atom, parse_program, PredRef, Program, Query, Rule};
use datalog_engine::{query_answers_full, AnswerSet, EvalOptions, SharedDatabase};
use datalog_opt::{fingerprint_rules, prepare, OptimizerConfig, PreparedProgram};
use datalog_trace::Json;

use crate::cache::{CachedAnswers, FormKey, PreparedCache};
use crate::protocol::{Request, Response};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of worker threads (= max concurrent clients).
    pub threads: usize,
    /// Prepared-form cache capacity.
    pub cache_capacity: usize,
    /// Run translation validation on every optimizer invocation
    /// (`OptimizerConfig::verify`): a query whose optimization cannot be
    /// re-justified is answered with an error instead of a wrong table.
    pub verify: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            cache_capacity: 256,
            verify: false,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Everything the worker threads share.
pub struct ServerState {
    rules: RwLock<(Vec<Rule>, u64)>,
    db: SharedDatabase,
    cache: Mutex<PreparedCache>,
    last_trace: Mutex<Option<Json>>,
    shutdown: AtomicBool,
    threads: usize,
    verify: bool,
    queries: AtomicU64,
    cache_misses: AtomicU64,
    answer_hits: AtomicU64,
}

impl ServerState {
    /// Fresh state with an empty rule set and EDB.
    pub fn new(cache_capacity: usize, threads: usize) -> ServerState {
        ServerState {
            rules: RwLock::new((Vec::new(), fingerprint_rules(&[]))),
            db: SharedDatabase::new(),
            cache: Mutex::new(PreparedCache::new(cache_capacity)),
            last_trace: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            threads,
            verify: false,
            queries: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            answer_hits: AtomicU64::new(0),
        }
    }

    /// Enable translation validation for every prepared form
    /// (`xdl serve --verify`).
    pub fn with_verify(mut self, verify: bool) -> ServerState {
        self.verify = verify;
        self
    }

    /// Whether shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Handle one request. Pure state-in/response-out — shared by the TCP
    /// loop, the tests, and the bench harness.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Fact(text) => self.handle_fact(text),
            Request::Load(path) => self.handle_load(path),
            Request::Query(text) => self.handle_query(text),
            Request::Stats => self.handle_stats(),
            Request::Trace => self.handle_trace(),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                Response::ok().with_info("bye", true)
            }
        }
    }

    fn handle_fact(&self, text: &str) -> Response {
        let atom = match parse_atom(text) {
            Ok(a) => a,
            Err(e) => return Response::err(e.render_at("fact")),
        };
        if atom.pred.is_adorned() {
            return Response::err("facts must use base (unadorned) predicates");
        }
        let Some(values) = atom.ground_values() else {
            return Response::err(format!("fact '{atom}' is not ground"));
        };
        {
            let rules = self
                .rules
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if rules.0.iter().any(|r| r.head.pred.base() == atom.pred) {
                return Response::err(format!(
                    "{} is derived by rules; facts may only be asserted for EDB predicates",
                    atom.pred
                ));
            }
        }
        let new = match self.db.insert(&atom.pred, &values) {
            Ok(n) => n,
            Err(e) => return Response::err(e.to_string()),
        };
        if new {
            lock(&self.cache).invalidate_edb(&atom.pred);
        }
        Response::ok()
            .with_info("new", new)
            .with_info("pred", &atom.pred)
            .with_info("version", self.db.version())
    }

    fn handle_load(&self, path: &str) -> Response {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return Response::err(format!("cannot read {path}: {e}")),
        };
        let parsed = match parse_program(&text) {
            Ok(p) => p,
            Err(e) => return Response::err(e.render_at(path)),
        };
        if let Err(e) = parsed.program.validate() {
            return Response::err(format!("{path}: {e}"));
        }
        let mut rules = self
            .rules
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let fresh: Vec<Rule> = parsed
            .program
            .rules
            .iter()
            .filter(|r| !rules.0.contains(r))
            .cloned()
            .collect();
        // IDB predicates hold no facts (§1.1): a rule head must not collide
        // with already-stored facts, and loaded facts must stay EDB-only
        // w.r.t. the merged rule set.
        let snapshot = self.db.snapshot();
        for r in &fresh {
            let head = r.head.pred.base();
            if snapshot.count(&head) > 0 {
                return Response::err(format!(
                    "cannot load rule for {head}: facts already stored for it \
                     (IDB predicates hold no facts)"
                ));
            }
        }
        let merged_heads: Vec<PredRef> = rules
            .0
            .iter()
            .chain(fresh.iter())
            .map(|r| r.head.pred.base())
            .collect();
        for pred in parsed.facts.keys() {
            if merged_heads.contains(&pred.base()) {
                return Response::err(format!(
                    "{path}: {pred} is derived by rules; facts may only be loaded \
                     for EDB predicates"
                ));
            }
        }
        let new_rules = fresh.len();
        if new_rules > 0 {
            rules.0.extend(fresh);
            rules.1 = fingerprint_rules(&rules.0);
        }
        let total_rules = rules.0.len();
        drop(rules);

        let mut new_facts = 0usize;
        let mut touched: Vec<PredRef> = Vec::new();
        for (pred, tuples) in &parsed.facts {
            let mut any = false;
            for t in tuples {
                match self.db.insert(pred, t) {
                    Ok(true) => {
                        new_facts += 1;
                        any = true;
                    }
                    Ok(false) => {}
                    Err(e) => return Response::err(format!("{path}: {e}")),
                }
            }
            if any {
                touched.push(pred.clone());
            }
        }
        if !touched.is_empty() {
            let mut cache = lock(&self.cache);
            for p in &touched {
                cache.invalidate_edb(p);
            }
        }
        let mut resp = Response::ok()
            .with_info("rules", total_rules)
            .with_info("new_rules", new_rules)
            .with_info("new_facts", new_facts)
            .with_info("version", self.db.version());
        if parsed.program.query.is_some() {
            resp = resp.with_info("query_ignored", true);
        }
        resp
    }

    fn handle_query(&self, text: &str) -> Response {
        let started = Instant::now();
        let parsed = match parse_program(text) {
            Ok(p) => p,
            Err(e) => return Response::err(e.render_at("query")),
        };
        if !parsed.program.rules.is_empty() || !parsed.facts.is_empty() {
            return Response::err("QUERY takes a single '?- atom.' (no rules or facts)");
        }
        let Some(query) = parsed.program.query else {
            return Response::err("QUERY takes a single '?- atom.'");
        };
        let adornment = match query_adornment(&query) {
            Ok(a) => a,
            Err(e) => return Response::err(e.to_string()),
        };

        let (rules, fingerprint) = {
            let g = self
                .rules
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (g.0.clone(), g.1)
        };
        let program = Program::with_query(rules, query.clone());
        if let Err(e) = program.validate() {
            return Response::err(e.to_string());
        }
        let key = FormKey {
            fingerprint,
            pred: query.atom.pred.name.as_str(),
            adornment: adornment.to_string(),
        };
        let query_repr = query.atom.to_string();

        // Snapshot before consulting the answer slot: ingestion inserts the
        // fact first and invalidates after, so a slot whose watermarks still
        // match this snapshot cannot be stale.
        let snapshot = self.db.snapshot();
        self.queries.fetch_add(1, Ordering::AcqRel);

        let mut cache = lock(&self.cache);
        let mut resolved: Option<(&'static str, Program, std::collections::BTreeSet<PredRef>)> =
            None;
        if let Some(entry) = cache.get_mut(&key) {
            entry.hits += 1;
            if let Some(slot) = &entry.answers {
                if slot.query_repr == query_repr
                    && slot.watermarks == snapshot.watermarks_for(&entry.prepared.support)
                {
                    // Serve the memoized payload: no eval, no optimizer,
                    // zero new phase events.
                    self.answer_hits.fetch_add(1, Ordering::AcqRel);
                    let resp = Response::ok()
                        .with_info("cache", "answers")
                        .with_info("answers", slot.answers)
                        .with_info("wall_us", started.elapsed().as_micros())
                        .with_payload_text(&slot.payload);
                    let trace = Self::trace_json(&query, &key, "answers", None, &entry.prepared);
                    drop(cache);
                    *lock(&self.last_trace) = Some(trace);
                    return resp;
                }
            }
            resolved = entry
                .prepared
                .instantiate(&query.atom)
                .map(|p| ("hit", p, entry.prepared.support.clone()));
        }
        let (status, eval_program, support) = match resolved {
            Some(t) => t,
            None => {
                self.cache_misses.fetch_add(1, Ordering::AcqRel);
                let prepared = match prepare(
                    &program.rules,
                    &query.atom.pred,
                    &adornment,
                    &OptimizerConfig {
                        verify: self.verify,
                        ..OptimizerConfig::default()
                    },
                ) {
                    Ok(p) => p,
                    Err(e) => return Response::err(format!("optimizer: {e}")),
                };
                let entry = cache.insert(key.clone(), prepared);
                match entry.prepared.instantiate(&query.atom) {
                    Some(p) => ("miss", p, entry.prepared.support.clone()),
                    // Defensive: fall back to the unoptimized program; its
                    // support is computed directly so cached answers still
                    // invalidate correctly.
                    None => ("miss", program.clone(), datalog_opt::edb_support(&program)),
                }
            }
        };
        drop(cache);

        let facts = snapshot.to_factset();
        let opts = EvalOptions {
            boolean_cut: true,
            ..EvalOptions::default()
        };
        let (answers, _out) = match query_answers_full(&eval_program, &facts, &opts) {
            Ok(r) => r,
            Err(e) => return Response::err(format!("evaluation: {e}")),
        };
        let payload = render_answers(&answers);

        let mut cache = lock(&self.cache);
        if let Some(entry) = cache.get_mut(&key) {
            entry.answers = Some(CachedAnswers {
                query_repr,
                watermarks: snapshot.watermarks_for(&support),
                payload: payload.clone(),
                answers: answers.len(),
            });
            let trace = Self::trace_json(
                &query,
                &key,
                status,
                (status == "miss").then_some(()),
                &entry.prepared,
            );
            drop(cache);
            *lock(&self.last_trace) = Some(trace);
        }

        Response::ok()
            .with_info("cache", status)
            .with_info("answers", answers.len())
            .with_info("wall_us", started.elapsed().as_micros())
            .with_payload_text(&payload)
    }

    /// The `TRACE` document for one query. `new_events` holds the phase
    /// events the optimizer emitted *for this request* — the full trace on
    /// a cold miss, empty on any cache hit (the observable promised by the
    /// prepared-query cache).
    fn trace_json(
        query: &Query,
        key: &FormKey,
        status: &str,
        fresh: Option<()>,
        prepared: &PreparedProgram,
    ) -> Json {
        let new_events: Vec<Json> = if fresh.is_some() {
            prepared.report.events().map(|e| e.to_json()).collect()
        } else {
            Vec::new()
        };
        Json::obj()
            .with("query", query.to_string())
            .with(
                "form",
                Json::obj()
                    .with("fingerprint", format!("{:016x}", key.fingerprint))
                    .with("pred", key.pred.as_str())
                    .with("adornment", key.adornment.as_str()),
            )
            .with("cache", status)
            .with("new_events", Json::Arr(new_events))
            .with("prepared_report", prepared.report.to_json())
    }

    fn handle_stats(&self) -> Response {
        let (rule_count, fingerprint) = {
            let g = self
                .rules
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (g.0.len(), g.1)
        };
        let cache = lock(&self.cache);
        let doc = Json::obj()
            .with("rules", rule_count)
            .with("fingerprint", format!("{fingerprint:016x}"))
            .with("preds", self.db.pred_count())
            .with("facts", self.db.total_facts())
            .with("version", self.db.version())
            .with("queries", self.queries.load(Ordering::Acquire))
            .with("prepared_forms", cache.len())
            .with("prepared_hits", cache.total_hits())
            .with("cache_misses", self.cache_misses.load(Ordering::Acquire))
            .with("answer_hits", self.answer_hits.load(Ordering::Acquire))
            .with("invalidations", cache.invalidations)
            .with("threads", self.threads);
        Response::ok().with_payload_text(&doc.to_string())
    }

    fn handle_trace(&self) -> Response {
        match &*lock(&self.last_trace) {
            Some(doc) => Response::ok().with_payload_text(&doc.to_string()),
            None => Response::err("no query has been evaluated yet"),
        }
    }
}

/// Render an answer set exactly as `xdl run` prints it: `true`/`false`
/// for boolean (zero-column) queries, otherwise the column header line
/// followed by the sorted rows.
pub fn render_answers(answers: &AnswerSet) -> String {
    match answers.as_bool() {
        Some(b) => format!("{b}\n"),
        None => answers.to_string(),
    }
}

/// A running server: listener address plus worker threads.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start the worker threads. Returns once the listener is
    /// accepting (the bound address is available immediately, which is what
    /// tests and the smoke script poll for).
    pub fn spawn(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;
        let threads = cfg.threads.max(1);
        let state = Arc::new(ServerState::new(cfg.cache_capacity, threads).with_verify(cfg.verify));
        let listener = Arc::new(listener);
        let workers = (0..threads)
            .map(|_| {
                let listener = Arc::clone(&listener);
                let state = Arc::clone(&state);
                std::thread::spawn(move || accept_loop(&listener, &state))
            })
            .collect();
        Ok(Server {
            addr,
            state,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (for in-process drivers like the bench harness).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Request shutdown and wake any accept-blocked workers.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
        for _ in 0..self.workers.len() {
            // One nudge per worker: a throwaway connection unblocks accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Block until every worker has exited (i.e. shutdown was requested and
    /// in-flight connections drained).
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.is_shutdown() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.is_shutdown() {
                    return;
                }
                serve_connection(stream, state);
            }
            Err(_) => {
                if state.is_shutdown() {
                    return;
                }
            }
        }
    }
}

/// Serve one client until it disconnects, errors, or the server shuts
/// down. A short read timeout lets the worker notice shutdown while a
/// client idles.
fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    // Responses are written as one buffered chunk; without TCP_NODELAY the
    // line-per-write pattern would stall ~40ms per exchange on loopback
    // (Nagle vs. delayed ACK).
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let resp = match Request::parse(trimmed) {
            Ok(req) => {
                let resp = state.handle(&req);
                if req == Request::Shutdown {
                    let _ = write_buffered(&resp, &mut writer);
                    // Wake every accept()-blocked worker so join() returns.
                    // The accepted stream's local address IS the listening
                    // address, so a throwaway connection per worker suffices.
                    if let Ok(addr) = writer.local_addr() {
                        for _ in 0..state.threads {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                    return;
                }
                resp
            }
            Err(msg) => Response::err(msg),
        };
        if write_buffered(&resp, &mut writer).is_err() {
            return;
        }
    }
}

/// Serialize the whole response into one buffer and send it with a single
/// `write_all`, so a multi-line payload costs one packet, not one per line.
fn write_buffered(resp: &Response, writer: &mut TcpStream) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(256);
    resp.write_to(&mut buf)?;
    writer.write_all(&buf)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_xdl_run_shapes() {
        let mut boolean = AnswerSet::default();
        assert_eq!(render_answers(&boolean), "false\n");
        boolean.rows.insert(vec![]);
        assert_eq!(render_answers(&boolean), "true\n");
        let mut unary = AnswerSet {
            columns: vec!["X".into()],
            rows: Default::default(),
        };
        unary.rows.insert(vec![datalog_ast::Value::int(1)]);
        unary.rows.insert(vec![datalog_ast::Value::int(2)]);
        assert_eq!(render_answers(&unary), "X\n1\n2\n");
    }

    #[test]
    fn state_rejects_idb_facts_and_bad_queries() {
        let state = ServerState::new(8, 1);
        let dir = std::env::temp_dir().join(format!("xdl-server-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tc.dl");
        std::fs::write(&file, "a(X, Y) :- p(X, Y).\np(1, 2).\n").unwrap();
        let resp = state.handle(&Request::Load(file.display().to_string()));
        assert!(resp.ok, "{}", resp.error);

        let resp = state.handle(&Request::Fact("a(1, 2).".into()));
        assert!(!resp.ok);
        assert!(resp.error.contains("derived by rules"), "{}", resp.error);

        let resp = state.handle(&Request::Fact("p(1, X).".into()));
        assert!(!resp.ok);
        assert!(resp.error.contains("not ground"), "{}", resp.error);

        let resp = state.handle(&Request::Query("?- a(X, _".into()));
        assert!(!resp.ok);
        assert!(resp.error.starts_with("query:1:"), "{}", resp.error);

        let resp = state.handle(&Request::Query("?- a(X, _).".into()));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.get("cache"), Some("miss"));
        assert_eq!(resp.payload, vec!["X", "1"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! A small blocking client for the line protocol, used by
//! `xdl query --connect` and the integration tests.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{Consistency, Response};

/// One connection to a running server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server address (e.g. `127.0.0.1:7654`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Request/response per line: Nagle only adds latency here.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Send one request line and read the response.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(format!("{line}\n").as_bytes())?;
        self.writer.flush()?;
        Response::read_from(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )
        })
    }

    /// `FACT <atom>.`
    pub fn fact(&mut self, atom: &str) -> std::io::Result<Response> {
        self.request(&format!("FACT {atom}"))
    }

    /// `LOAD <path>`
    pub fn load(&mut self, path: &str) -> std::io::Result<Response> {
        self.request(&format!("LOAD {path}"))
    }

    /// `QUERY ?- ... .` (fresh — the default consistency mode).
    pub fn query(&mut self, query: &str) -> std::io::Result<Response> {
        self.request(&format!("QUERY {query}"))
    }

    /// `QUERY <mode> ?- ... .` with an explicit consistency mode
    /// (`fresh`, `any`, or `staleness=<ms>` — see [`Consistency`]).
    pub fn query_at(&mut self, consistency: Consistency, query: &str) -> std::io::Result<Response> {
        match consistency {
            Consistency::Fresh => self.query(query),
            mode => self.request(&format!("QUERY {mode} {query}")),
        }
    }

    /// `STATS`
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.request("STATS")
    }

    /// `TRACE`
    pub fn trace(&mut self) -> std::io::Result<Response> {
        self.request("TRACE")
    }

    /// `METRICS` (Prometheus text exposition) or `METRICS JSON`.
    pub fn metrics(&mut self, json: bool) -> std::io::Result<Response> {
        self.request(if json { "METRICS JSON" } else { "METRICS" })
    }

    /// `SHUTDOWN`
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request("SHUTDOWN")
    }
}

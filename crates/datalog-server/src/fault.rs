//! Fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a set of switches the integration tests flip to make
//! the server misbehave *deterministically*: fsync failures in the WAL,
//! a panic in the middle of a query evaluation. The plan is threaded
//! through [`ServerConfig`](crate::ServerConfig) as a cheap `Arc`; the
//! default plan injects nothing and costs one atomic load per consult, so
//! it stays compiled into release builds (a deliberate choice — the fault
//! suite exercises the exact binary that ships, not a test-only variant).
//!
//! The remaining faults of the harness need no server cooperation and are
//! driven purely from the tests: a *torn WAL tail* is real bytes appended
//! to the log file, a *slow client* is a socket written one byte at a
//! time, a *deadline storm* is plain concurrent load against a server
//! configured with tiny limits, and a SIGKILL crash is exactly that (see
//! `scripts/check.sh`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Deterministic fault switches shared by the server and the tests.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// While set, every WAL fsync reports an I/O error (the write is not
    /// acknowledged; the record may or may not survive a crash — exactly
    /// the contract of a failed fsync).
    fsync_fail: AtomicBool,
    /// One-shot: panic inside query handling when the query predicate's
    /// base name matches. Cleared by firing, so recovery is observable.
    panic_on_query: Mutex<Option<String>>,
    /// While non-zero, every resident drain sleeps this many milliseconds
    /// *while holding the form lock* — the widest possible window for
    /// concurrent stale reads and contention fallbacks to be observed.
    slow_drain_ms: AtomicU64,
    /// A budget of drains to fail: each consult while the budget is
    /// positive decrements it and poisons that propagation (the drain is
    /// run under an already-cancelled token). Lets tests stage "fails
    /// once", "fails N times then heals", and "poisons every rebuild".
    fail_drains: AtomicU64,
    /// How many injected faults have fired (for test assertions).
    fired: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm or disarm fsync failure.
    pub fn fail_fsync(&self, on: bool) {
        self.fsync_fail.store(on, Ordering::Release);
    }

    /// Consulted by the WAL before each fsync.
    pub fn fsync_should_fail(&self) -> bool {
        let fail = self.fsync_fail.load(Ordering::Acquire);
        if fail {
            self.fired.fetch_add(1, Ordering::AcqRel);
        }
        fail
    }

    /// Arm a one-shot panic for the next query over `pred`.
    pub fn panic_on_query(&self, pred: &str) {
        *self
            .panic_on_query
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(pred.to_string());
    }

    /// Consulted by the query handler; fires (and clears) when armed for
    /// this predicate. The panic itself happens at the call site so the
    /// backtrace points into real handler code.
    pub fn should_panic_on_query(&self, pred: &str) -> bool {
        let mut g = self
            .panic_on_query
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if g.as_deref() == Some(pred) {
            *g = None;
            self.fired.fetch_add(1, Ordering::AcqRel);
            return true;
        }
        false
    }

    /// Make every resident drain hold its form lock for `ms` milliseconds
    /// (0 disarms). Counts one fire per delayed drain.
    pub fn slow_drains(&self, ms: u64) {
        self.slow_drain_ms.store(ms, Ordering::Release);
    }

    /// Consulted by the drain path; returns the artificial delay to apply
    /// while the form lock is held, counting a fire when armed.
    pub fn drain_delay_ms(&self) -> u64 {
        let ms = self.slow_drain_ms.load(Ordering::Acquire);
        if ms > 0 {
            self.fired.fetch_add(1, Ordering::AcqRel);
        }
        ms
    }

    /// Arm the next `n` resident drains to fail (poisoning the form).
    pub fn fail_drains(&self, n: u64) {
        self.fail_drains.store(n, Ordering::Release);
    }

    /// Consulted once per drain attempt: while the failure budget is
    /// positive, decrements it and reports that this drain must fail.
    pub fn drain_should_fail(&self) -> bool {
        let prev = self
            .fail_drains
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok();
        if prev {
            self.fired.fetch_add(1, Ordering::AcqRel);
        }
        prev
    }

    /// Total injected faults that have fired.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(!plan.fsync_should_fail());
        assert!(!plan.should_panic_on_query("a"));
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn panic_switch_is_one_shot_and_predicate_scoped() {
        let plan = FaultPlan::new();
        plan.panic_on_query("a");
        assert!(!plan.should_panic_on_query("b"), "other predicates pass");
        assert!(plan.should_panic_on_query("a"));
        assert!(!plan.should_panic_on_query("a"), "fired once, then cleared");
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn drain_failure_budget_decrements_then_heals() {
        let plan = FaultPlan::new();
        assert!(!plan.drain_should_fail(), "disarmed by default");
        plan.fail_drains(2);
        assert!(plan.drain_should_fail());
        assert!(plan.drain_should_fail());
        assert!(!plan.drain_should_fail(), "budget exhausted — drains heal");
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn slow_drain_delay_is_reported_until_disarmed() {
        let plan = FaultPlan::new();
        assert_eq!(plan.drain_delay_ms(), 0);
        plan.slow_drains(25);
        assert_eq!(plan.drain_delay_ms(), 25);
        plan.slow_drains(0);
        assert_eq!(plan.drain_delay_ms(), 0);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn fsync_switch_counts_fires_until_disarmed() {
        let plan = FaultPlan::new();
        plan.fail_fsync(true);
        assert!(plan.fsync_should_fail());
        assert!(plan.fsync_should_fail());
        plan.fail_fsync(false);
        assert!(!plan.fsync_should_fail());
        assert_eq!(plan.fired(), 2);
    }
}

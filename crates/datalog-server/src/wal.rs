//! Write-ahead log: crash durability for ingested rules and facts.
//!
//! Every accepted `FACT` and every fresh rule/fact from a `LOAD` is
//! appended here — and, per the configured [`FsyncPolicy`], fsynced —
//! *before* it is applied to the shared database and acknowledged to the
//! client. On startup the server replays the log, so a crash (including
//! SIGKILL) loses no acknowledged write.
//!
//! ## Record format
//!
//! The log is a flat sequence of length-prefixed, checksummed records:
//!
//! ```text
//! [u32 payload length, LE] [u32 CRC-32 (IEEE) of payload, LE] [payload]
//! ```
//!
//! The payload is one tag byte followed by UTF-8 text:
//!
//! * `F` + the fact atom, e.g. `F p(1, 2)`;
//! * `R` + the rule source, e.g. `R a(X, Y) :- p(X, Y).`
//!
//! Text is the storage format on purpose: records are parsed on replay by
//! the same parser that validated them at ingestion, the log is
//! greppable with standard tools, and the checksum makes the redundancy
//! safe. A *torn tail* — a record whose header, body, or checksum is
//! incomplete or corrupt, the signature of a crash mid-append — is
//! **truncated, not fatal**: replay keeps every record up to the last
//! intact one and cuts the file there, exactly the prefix that could have
//! been acknowledged.
//!
//! ## Snapshot + compaction
//!
//! An unbounded log makes restart cost proportional to history. After
//! [`Wal::compact_every`] appended records, the server writes the full
//! current state (rules, then facts) as `snapshot.dat` in the same record
//! format — via a temp file, fsync, atomic rename — and truncates
//! `wal.log`. Startup loads the snapshot first, then replays the log tail
//! on top.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use datalog_trace::Histogram;

use crate::fault::FaultPlan;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Upper bound on a single record's payload; a length prefix beyond this
/// is treated as corruption (torn tail), not an allocation request.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// When to fsync the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — no acknowledged write is ever lost.
    Always,
    /// fsync every N records (and on snapshot). A crash may lose up to
    /// N-1 acknowledged writes; throughput-friendly middle ground.
    EveryN(u32),
    /// Never fsync explicitly; durability is whatever the OS page cache
    /// provides. Survives process crashes (the kernel has the bytes) but
    /// not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI word: `always`, `batch` (= every 64), or `never`.
    pub fn parse(word: &str) -> Option<FsyncPolicy> {
        match word {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::EveryN(64)),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// One logical logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A ground fact, stored as its atom text (no trailing dot).
    Fact(String),
    /// A rule, stored as its source text.
    Rule(String),
}

impl WalOp {
    fn encode(&self) -> Vec<u8> {
        let (tag, text) = match self {
            WalOp::Fact(t) => (b'F', t),
            WalOp::Rule(t) => (b'R', t),
        };
        let mut payload = Vec::with_capacity(text.len() + 2);
        payload.push(tag);
        payload.push(b' ');
        payload.extend_from_slice(text.as_bytes());
        payload
    }

    fn decode(payload: &[u8]) -> Option<WalOp> {
        let (&tag, rest) = payload.split_first()?;
        let rest = rest.strip_prefix(b" ")?;
        let text = std::str::from_utf8(rest).ok()?.to_string();
        match tag {
            b'F' => Some(WalOp::Fact(text)),
            b'R' => Some(WalOp::Rule(text)),
            _ => None,
        }
    }
}

/// What [`Wal::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Operations to apply, snapshot first, then the log tail, in order.
    pub ops: Vec<WalOp>,
    /// Records recovered from `snapshot.dat`.
    pub from_snapshot: u64,
    /// Records recovered from `wal.log`.
    pub from_log: u64,
    /// Bytes cut off the log's torn tail (0 on a clean log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log (plus its snapshot sibling).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    policy: FsyncPolicy,
    fault: Arc<FaultPlan>,
    unsynced: u32,
    /// Records appended since the last compaction (persisted implicitly as
    /// the log length; rebuilt on open).
    since_snapshot: u64,
    /// Compaction threshold: snapshot + truncate after this many appended
    /// records. `0` disables automatic compaction.
    pub compact_every: u64,
    /// Total records appended over this process's lifetime.
    pub appended: u64,
    /// Snapshots written over this process's lifetime.
    pub snapshots: u64,
    /// Telemetry: append latency (write + policy fsync), when attached.
    h_append: Option<Arc<Histogram>>,
    /// Telemetry: fsync latency alone, when attached.
    h_fsync: Option<Arc<Histogram>>,
}

fn log_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.dat")
}

/// Scan one record stream. Returns the decoded ops and the byte offset
/// one past the last intact record (everything after is a torn tail).
fn scan_records(bytes: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break; // Garbage length: treat as torn.
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // Body shorter than announced: torn mid-append.
        };
        if crc32(payload) != crc {
            break; // Checksum mismatch: corrupt, cut here.
        }
        let Some(op) = WalOp::decode(payload) else {
            break; // Unknown tag: written by a future version? Cut.
        };
        ops.push(op);
        pos += 8 + len as usize;
    }
    (ops, pos)
}

fn encode_record(op: &WalOp) -> Vec<u8> {
    let payload = op.encode();
    let mut rec = Vec::with_capacity(payload.len() + 8);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

impl Wal {
    /// Open (creating if needed) the WAL in `dir`, replaying snapshot and
    /// log. A torn log tail is truncated on the spot so the next append
    /// lands on a clean boundary.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        compact_every: u64,
        fault: Arc<FaultPlan>,
    ) -> std::io::Result<(Wal, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let mut recovery = Recovery::default();

        if let Ok(bytes) = std::fs::read(snapshot_path(dir)) {
            let (ops, good) = scan_records(&bytes);
            // A snapshot is written atomically (temp + rename); a torn one
            // means rename never happened on this filesystem's watch —
            // still, salvage the intact prefix rather than refuse to start.
            recovery.from_snapshot = ops.len() as u64;
            recovery.ops.extend(ops);
            let _ = good;
        }

        let path = log_path(dir);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (ops, good) = scan_records(&bytes);
        recovery.from_log = ops.len() as u64;
        recovery.truncated_bytes = (bytes.len() - good) as u64;
        recovery.ops.extend(ops);

        let file = OpenOptions::new()
            .create(true)
            .truncate(false) // the intact prefix survives; set_len cuts the tail
            .read(true)
            .write(true)
            .open(&path)?;
        // Cut the torn tail (no-op on a clean log), then append from there.
        file.set_len(good as u64)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                file,
                policy,
                fault,
                unsynced: 0,
                since_snapshot: recovery.from_log,
                compact_every,
                appended: 0,
                snapshots: 0,
                h_append: None,
                h_fsync: None,
            },
            recovery,
        ))
    }

    /// Attach latency histograms (append wall, fsync wall) from the
    /// server's metric registry. Without them the log times nothing.
    pub fn set_metrics(&mut self, append: Arc<Histogram>, fsync: Arc<Histogram>) {
        self.h_append = Some(append);
        self.h_fsync = Some(fsync);
    }

    /// fsync honoring the fault plan (a failed fsync means the record must
    /// not be acknowledged; whether it survives a crash is undefined —
    /// precisely the semantics of real fsync failure).
    fn sync(&mut self) -> std::io::Result<()> {
        if self.fault.fsync_should_fail() {
            return Err(std::io::Error::other("injected fsync failure"));
        }
        let t0 = Instant::now();
        self.file.sync_data()?;
        if let Some(h) = &self.h_fsync {
            h.record_duration(t0.elapsed());
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Append one record and apply the fsync policy. On error the caller
    /// must not acknowledge the write.
    pub fn append(&mut self, op: &WalOp) -> std::io::Result<()> {
        let t0 = Instant::now();
        self.file.write_all(&encode_record(op))?;
        self.appended += 1;
        self.since_snapshot += 1;
        self.unsynced += 1;
        let result = match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        };
        if let Some(h) = &self.h_append {
            h.record_duration(t0.elapsed());
        }
        result
    }

    /// Whether enough records accumulated to warrant a snapshot.
    pub fn wants_compaction(&self) -> bool {
        self.compact_every > 0 && self.since_snapshot >= self.compact_every
    }

    /// Records appended since the last snapshot (log tail length).
    pub fn since_snapshot(&self) -> u64 {
        self.since_snapshot
    }

    /// Write the full state as a fresh snapshot (temp file, fsync, atomic
    /// rename), then truncate the log. `ops` must render the complete
    /// current state: rules first, then facts.
    pub fn compact(&mut self, ops: impl IntoIterator<Item = WalOp>) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut buf = Vec::new();
            for op in ops {
                buf.extend_from_slice(&encode_record(&op));
            }
            f.write_all(&buf)?;
            if self.fault.fsync_should_fail() {
                return Err(std::io::Error::other("injected fsync failure"));
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, snapshot_path(&self.dir))?;
        // Only after the snapshot is durably in place may the log shrink.
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.sync()?;
        self.since_snapshot = 0;
        self.snapshots += 1;
        Ok(())
    }

    /// The log file path (tests corrupt it to simulate torn tails).
    pub fn log_file(&self) -> PathBuf {
        log_path(&self.dir)
    }
}

/// Read the raw bytes of a WAL directory's log (test helper).
pub fn read_log_bytes(dir: &Path) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(log_path(dir))?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(name: &str) -> TempDir {
            let p = std::env::temp_dir().join(format!(
                "xdl-wal-{}-{name}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn plan() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new())
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let ops = vec![
            WalOp::Rule("a(X, Y) :- p(X, Y).".into()),
            WalOp::Fact("p(1, 2)".into()),
            WalOp::Fact("p(2, 3)".into()),
        ];
        {
            let (mut wal, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            assert!(rec.ops.is_empty());
            for op in &ops {
                wal.append(op).unwrap();
            }
        }
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.ops, ops);
        assert_eq!(rec.from_log, 3);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = TempDir::new("torn");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            wal.append(&WalOp::Fact("p(1, 2)".into())).unwrap();
            wal.append(&WalOp::Fact("p(2, 3)".into())).unwrap();
        }
        // Simulate a crash mid-append: a record header announcing more
        // bytes than were written.
        let path = log_path(&dir.0);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"F p(9, 9").unwrap(); // short body
        drop(f);

        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_log, 2, "intact prefix survives");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "file physically truncated back to the last intact record"
        );
        // And the log accepts appends again.
        let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        wal.append(&WalOp::Fact("p(9, 9)".into())).unwrap();
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_log, 3);
    }

    #[test]
    fn corrupt_checksum_cuts_from_the_bad_record() {
        let dir = TempDir::new("crc");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            for i in 0..5 {
                wal.append(&WalOp::Fact(format!("p({i})"))).unwrap();
            }
        }
        // Flip one payload byte of the third record.
        let path = log_path(&dir.0);
        let mut bytes = std::fs::read(&path).unwrap();
        let rec_len = bytes.len() / 5;
        bytes[2 * rec_len + 9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_log, 2, "records before the corruption survive");
    }

    #[test]
    fn injected_fsync_failure_surfaces_as_error() {
        let dir = TempDir::new("fsync");
        let fault = plan();
        let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, Arc::clone(&fault)).unwrap();
        wal.append(&WalOp::Fact("p(1)".into())).unwrap();
        fault.fail_fsync(true);
        assert!(wal.append(&WalOp::Fact("p(2)".into())).is_err());
        fault.fail_fsync(false);
        wal.append(&WalOp::Fact("p(3)".into())).unwrap();
    }

    #[test]
    fn compaction_moves_state_to_snapshot_and_truncates_log() {
        let dir = TempDir::new("compact");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 3, plan()).unwrap();
            wal.append(&WalOp::Rule("a(X) :- p(X).".into())).unwrap();
            wal.append(&WalOp::Fact("p(1)".into())).unwrap();
            wal.append(&WalOp::Fact("p(2)".into())).unwrap();
            assert!(wal.wants_compaction());
            wal.compact(vec![
                WalOp::Rule("a(X) :- p(X).".into()),
                WalOp::Fact("p(1)".into()),
                WalOp::Fact("p(2)".into()),
            ])
            .unwrap();
            assert!(!wal.wants_compaction());
            assert_eq!(std::fs::metadata(log_path(&dir.0)).unwrap().len(), 0);
            // Post-compaction appends land in the (empty) log.
            wal.append(&WalOp::Fact("p(3)".into())).unwrap();
        }
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 3, plan()).unwrap();
        assert_eq!(rec.from_snapshot, 3);
        assert_eq!(rec.from_log, 1);
        assert_eq!(
            rec.ops.last(),
            Some(&WalOp::Fact("p(3)".into())),
            "log tail replays after the snapshot"
        );
    }

    #[test]
    fn fsync_policy_parse_words() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::EveryN(64)));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}

//! Write-ahead log: crash durability for ingested rules and facts.
//!
//! Every accepted `FACT` and every fresh rule/fact from a `LOAD` is
//! appended here — and, per the configured [`FsyncPolicy`], fsynced —
//! *before* it is applied to the shared database and acknowledged to the
//! client. On startup the server replays the log, so a crash (including
//! SIGKILL) loses no acknowledged write.
//!
//! ## Record format
//!
//! The log is a flat sequence of length-prefixed, checksummed records:
//!
//! ```text
//! [u32 payload length, LE] [u32 CRC-32 (IEEE) of payload, LE] [payload]
//! ```
//!
//! The payload is one tag byte followed by UTF-8 text:
//!
//! * `F` + the fact atom, e.g. `F p(1, 2)`;
//! * `R` + the rule source, e.g. `R a(X, Y) :- p(X, Y).`
//!
//! Text is the storage format on purpose: records are parsed on replay by
//! the same parser that validated them at ingestion, the log is
//! greppable with standard tools, and the checksum makes the redundancy
//! safe. A *torn tail* — a record whose header, body, or checksum is
//! incomplete or corrupt, the signature of a crash mid-append — is
//! **truncated, not fatal**: replay keeps every record up to the last
//! intact one and cuts the file there, exactly the prefix that could have
//! been acknowledged.
//!
//! ## Snapshot + compaction: the batch-manifest swap
//!
//! An unbounded log makes restart cost proportional to history. After
//! [`Wal::compact_every`] appended records, the server snapshots the full
//! current state and truncates `wal.log`. The snapshot is **not** a replay
//! log: it is a text manifest (`snapshot.manifest`) naming one binary run
//! file per predicate (`run-<gen>-<i>.xrs`, typed values, CRC-checked via
//! the manifest) plus the rule sources. Each run file is written to a temp
//! name, fsynced, and renamed; the manifest rename is the single atomic
//! commit point. Recovery bulk-loads each run file as a typed row batch —
//! one sort-based dedup + seal per relation
//! ([`datalog_engine::SharedDatabase::load_batch`]) instead of re-parsing
//! and re-hashing every fact's text — then replays the log tail on top.
//! Run files from superseded generations are garbage-collected after the
//! swap. The pre-manifest format (`snapshot.dat`, record-framed text ops)
//! is still read on startup so existing WAL directories upgrade in place
//! at their next compaction.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use datalog_ast::Value;
use datalog_trace::Histogram;

use crate::fault::FaultPlan;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Upper bound on a single record's payload; a length prefix beyond this
/// is treated as corruption (torn tail), not an allocation request.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// When to fsync the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — no acknowledged write is ever lost.
    Always,
    /// fsync every N records (and on snapshot). A crash may lose up to
    /// N-1 acknowledged writes; throughput-friendly middle ground.
    EveryN(u32),
    /// Never fsync explicitly; durability is whatever the OS page cache
    /// provides. Survives process crashes (the kernel has the bytes) but
    /// not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI word: `always`, `batch` (= every 64), or `never`.
    pub fn parse(word: &str) -> Option<FsyncPolicy> {
        match word {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::EveryN(64)),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// One logical logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A ground fact, stored as its atom text (no trailing dot).
    Fact(String),
    /// A rule, stored as its source text.
    Rule(String),
}

impl WalOp {
    fn encode(&self) -> Vec<u8> {
        let (tag, text) = match self {
            WalOp::Fact(t) => (b'F', t),
            WalOp::Rule(t) => (b'R', t),
        };
        let mut payload = Vec::with_capacity(text.len() + 2);
        payload.push(tag);
        payload.push(b' ');
        payload.extend_from_slice(text.as_bytes());
        payload
    }

    fn decode(payload: &[u8]) -> Option<WalOp> {
        let (&tag, rest) = payload.split_first()?;
        let rest = rest.strip_prefix(b" ")?;
        let text = std::str::from_utf8(rest).ok()?.to_string();
        match tag {
            b'F' => Some(WalOp::Fact(text)),
            b'R' => Some(WalOp::Rule(text)),
            _ => None,
        }
    }
}

/// One predicate's snapshot rows, recovered from (or destined for) a
/// binary run file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunBatch {
    /// Rendered predicate name.
    pub pred: String,
    /// Tuple arity.
    pub arity: usize,
    /// Rows in their original ingestion order (ids must survive recovery).
    pub rows: Vec<Box<[Value]>>,
}

/// What [`Wal::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Text operations to apply *after* the batches: legacy `snapshot.dat`
    /// records (if no manifest exists), then the log tail, in order.
    pub ops: Vec<WalOp>,
    /// Rule sources from the manifest (applied before any facts).
    pub rules: Vec<String>,
    /// Typed row batches from the manifest's run files, bulk-loadable
    /// without re-parsing any fact text.
    pub batches: Vec<RunBatch>,
    /// Records recovered from a legacy `snapshot.dat`.
    pub from_snapshot: u64,
    /// Run files loaded from the manifest.
    pub run_files: u64,
    /// Rows loaded across all run files.
    pub run_rows: u64,
    /// Records recovered from `wal.log`.
    pub from_log: u64,
    /// Bytes cut off the log's torn tail (0 on a clean log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log (plus its snapshot sibling).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    policy: FsyncPolicy,
    fault: Arc<FaultPlan>,
    unsynced: u32,
    /// Records appended since the last compaction (persisted implicitly as
    /// the log length; rebuilt on open).
    since_snapshot: u64,
    /// Compaction threshold: snapshot + truncate after this many appended
    /// records. `0` disables automatic compaction.
    pub compact_every: u64,
    /// Total records appended over this process's lifetime.
    pub appended: u64,
    /// Snapshots written over this process's lifetime.
    pub snapshots: u64,
    /// Generation counter for run-file names; new generations never
    /// collide with files the live manifest still references.
    run_gen: u64,
    /// Telemetry: append latency (write + policy fsync), when attached.
    h_append: Option<Arc<Histogram>>,
    /// Telemetry: fsync latency alone, when attached.
    h_fsync: Option<Arc<Histogram>>,
}

fn log_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.dat")
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.manifest")
}

/// Manifest header line; bump the version on any format change.
const MANIFEST_HEADER: &str = "xdl-snapshot-manifest v1";
/// Run-file magic; the row payload follows immediately.
const RUN_MAGIC: &[u8; 6] = b"XRUN1\n";

/// Encode one batch as a run file: magic, then per value a tag byte —
/// `0` + 8-byte LE integer, or `1` + u32 LE length + UTF-8 symbol text.
/// Symbols must be serialized by name: their ids are process-interned.
fn encode_run_file(batch: &RunBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + batch.rows.len() * batch.arity * 9);
    buf.extend_from_slice(RUN_MAGIC);
    for row in &batch.rows {
        for v in row.iter() {
            match v {
                Value::Int(i) => {
                    buf.push(0);
                    buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::Sym(s) => {
                    let text = s.as_str();
                    buf.push(1);
                    buf.extend_from_slice(&(text.len() as u32).to_le_bytes());
                    buf.extend_from_slice(text.as_bytes());
                }
            }
        }
    }
    buf
}

/// Decode a run file written by [`encode_run_file`]. `None` on any
/// structural mismatch (wrong magic, short read, trailing bytes, bad
/// UTF-8) — the caller treats the file as lost and salvages the rest.
fn decode_run_file(bytes: &[u8], arity: usize, rows: usize) -> Option<Vec<RowBuf>> {
    let mut pos = RUN_MAGIC.len();
    if bytes.get(..pos)? != RUN_MAGIC {
        return None;
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = *bytes.get(pos)?;
            pos += 1;
            match tag {
                0 => {
                    let raw: [u8; 8] = bytes.get(pos..pos + 8)?.try_into().ok()?;
                    pos += 8;
                    row.push(Value::int(i64::from_le_bytes(raw)));
                }
                1 => {
                    let raw: [u8; 4] = bytes.get(pos..pos + 4)?.try_into().ok()?;
                    pos += 4;
                    let len = u32::from_le_bytes(raw) as usize;
                    let text = std::str::from_utf8(bytes.get(pos..pos + len)?).ok()?;
                    pos += len;
                    row.push(Value::sym(text));
                }
                _ => return None,
            }
        }
        out.push(row.into_boxed_slice());
    }
    (pos == bytes.len()).then_some(out)
}

type RowBuf = Box<[Value]>;

/// Scan one record stream. Returns the decoded ops and the byte offset
/// one past the last intact record (everything after is a torn tail).
fn scan_records(bytes: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break; // Garbage length: treat as torn.
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // Body shorter than announced: torn mid-append.
        };
        if crc32(payload) != crc {
            break; // Checksum mismatch: corrupt, cut here.
        }
        let Some(op) = WalOp::decode(payload) else {
            break; // Unknown tag: written by a future version? Cut.
        };
        ops.push(op);
        pos += 8 + len as usize;
    }
    (ops, pos)
}

fn encode_record(op: &WalOp) -> Vec<u8> {
    let payload = op.encode();
    let mut rec = Vec::with_capacity(payload.len() + 8);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

impl Wal {
    /// Open (creating if needed) the WAL in `dir`, replaying snapshot and
    /// log. A torn log tail is truncated on the spot so the next append
    /// lands on a clean boundary.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        compact_every: u64,
        fault: Arc<FaultPlan>,
    ) -> std::io::Result<(Wal, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let mut recovery = Recovery::default();

        if let Ok(text) = std::fs::read_to_string(manifest_path(dir)) {
            // Manifest recovery: typed run-file batches, no text replay.
            // A missing or corrupt run file is salvaged around (the
            // manifest rename was atomic; run files were fsynced before
            // it), mirroring the legacy intact-prefix policy.
            let mut lines = text.lines();
            if lines.next() == Some(MANIFEST_HEADER) {
                for line in lines {
                    if let Some(rule) = line.strip_prefix("rule ") {
                        recovery.rules.push(rule.to_string());
                    } else if let Some(rest) = line.strip_prefix("run ") {
                        let mut it = rest.splitn(5, ' ');
                        let (Some(file), Some(arity), Some(rows), Some(crc), Some(pred)) = (
                            it.next(),
                            it.next().and_then(|w| w.parse::<usize>().ok()),
                            it.next().and_then(|w| w.parse::<usize>().ok()),
                            it.next().and_then(|w| w.parse::<u32>().ok()),
                            it.next(),
                        ) else {
                            continue;
                        };
                        let Ok(bytes) = std::fs::read(dir.join(file)) else {
                            continue;
                        };
                        if crc32(&bytes) != crc {
                            continue;
                        }
                        let Some(decoded) = decode_run_file(&bytes, arity, rows) else {
                            continue;
                        };
                        recovery.run_files += 1;
                        recovery.run_rows += decoded.len() as u64;
                        recovery.batches.push(RunBatch {
                            pred: pred.to_string(),
                            arity,
                            rows: decoded,
                        });
                    }
                }
            }
        } else if let Ok(bytes) = std::fs::read(snapshot_path(dir)) {
            // Legacy record-framed snapshot: written atomically (temp +
            // rename); a torn one means rename never happened on this
            // filesystem's watch — still, salvage the intact prefix
            // rather than refuse to start.
            let (ops, good) = scan_records(&bytes);
            recovery.from_snapshot = ops.len() as u64;
            recovery.ops.extend(ops);
            let _ = good;
        }

        let path = log_path(dir);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (ops, good) = scan_records(&bytes);
        recovery.from_log = ops.len() as u64;
        recovery.truncated_bytes = (bytes.len() - good) as u64;
        recovery.ops.extend(ops);

        let file = OpenOptions::new()
            .create(true)
            .truncate(false) // the intact prefix survives; set_len cuts the tail
            .read(true)
            .write(true)
            .open(&path)?;
        // Cut the torn tail (no-op on a clean log), then append from there.
        file.set_len(good as u64)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;

        // Never reuse a generation some existing run file already claims
        // (the live manifest may reference it).
        let mut run_gen = 0u64;
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(gen) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("run-"))
                    .and_then(|n| n.split('-').next())
                    .and_then(|g| g.parse::<u64>().ok())
                {
                    run_gen = run_gen.max(gen);
                }
            }
        }

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                file,
                policy,
                fault,
                unsynced: 0,
                since_snapshot: recovery.from_log,
                compact_every,
                appended: 0,
                snapshots: 0,
                run_gen,
                h_append: None,
                h_fsync: None,
            },
            recovery,
        ))
    }

    /// Attach latency histograms (append wall, fsync wall) from the
    /// server's metric registry. Without them the log times nothing.
    pub fn set_metrics(&mut self, append: Arc<Histogram>, fsync: Arc<Histogram>) {
        self.h_append = Some(append);
        self.h_fsync = Some(fsync);
    }

    /// fsync honoring the fault plan (a failed fsync means the record must
    /// not be acknowledged; whether it survives a crash is undefined —
    /// precisely the semantics of real fsync failure).
    fn sync(&mut self) -> std::io::Result<()> {
        if self.fault.fsync_should_fail() {
            return Err(std::io::Error::other("injected fsync failure"));
        }
        let t0 = Instant::now();
        self.file.sync_data()?;
        if let Some(h) = &self.h_fsync {
            h.record_duration(t0.elapsed());
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Append one record and apply the fsync policy. On error the caller
    /// must not acknowledge the write.
    pub fn append(&mut self, op: &WalOp) -> std::io::Result<()> {
        let t0 = Instant::now();
        self.file.write_all(&encode_record(op))?;
        self.appended += 1;
        self.since_snapshot += 1;
        self.unsynced += 1;
        let result = match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        };
        if let Some(h) = &self.h_append {
            h.record_duration(t0.elapsed());
        }
        result
    }

    /// Whether enough records accumulated to warrant a snapshot.
    pub fn wants_compaction(&self) -> bool {
        self.compact_every > 0 && self.since_snapshot >= self.compact_every
    }

    /// Records appended since the last snapshot (log tail length).
    pub fn since_snapshot(&self) -> u64 {
        self.since_snapshot
    }

    /// Write the full state as a fresh batch-manifest snapshot, then
    /// truncate the log. `rules` are the complete current rule sources;
    /// `batches` the complete current facts, one batch per predicate in
    /// ingestion order. Each run file is written under a fresh generation,
    /// fsynced, and renamed into place; the manifest rename is the commit
    /// point; superseded run files (and any legacy `snapshot.dat`) are
    /// garbage-collected afterwards, best-effort.
    pub fn compact(&mut self, rules: &[String], batches: &[RunBatch]) -> std::io::Result<()> {
        self.run_gen += 1;
        let gen = self.run_gen;
        let mut manifest = String::from(MANIFEST_HEADER);
        manifest.push('\n');
        for rule in rules {
            manifest.push_str("rule ");
            manifest.push_str(rule);
            manifest.push('\n');
        }
        let mut live: Vec<String> = Vec::with_capacity(batches.len());
        for (i, batch) in batches.iter().enumerate() {
            let name = format!("run-{gen}-{i}.xrs");
            let bytes = encode_run_file(batch);
            let crc = crc32(&bytes);
            let tmp = self.dir.join(format!("{name}.tmp"));
            {
                let mut f = File::create(&tmp)?;
                f.write_all(&bytes)?;
                if self.fault.fsync_should_fail() {
                    return Err(std::io::Error::other("injected fsync failure"));
                }
                f.sync_data()?;
            }
            std::fs::rename(&tmp, self.dir.join(&name))?;
            manifest.push_str(&format!(
                "run {name} {} {} {crc} {}\n",
                batch.arity,
                batch.rows.len(),
                batch.pred
            ));
            live.push(name);
        }
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(manifest.as_bytes())?;
            if self.fault.fsync_should_fail() {
                return Err(std::io::Error::other("injected fsync failure"));
            }
            f.sync_data()?;
        }
        // The swap: after this rename, recovery reads the new manifest.
        std::fs::rename(&tmp, manifest_path(&self.dir))?;
        // Only after the snapshot is durably in place may the log shrink.
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.sync()?;
        self.since_snapshot = 0;
        self.snapshots += 1;
        // GC: the legacy snapshot and run files no manifest references.
        let _ = std::fs::remove_file(snapshot_path(&self.dir));
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with("run-") && !live.iter().any(|l| l == name) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// The log file path (tests corrupt it to simulate torn tails).
    pub fn log_file(&self) -> PathBuf {
        log_path(&self.dir)
    }
}

/// Read the raw bytes of a WAL directory's log (test helper).
pub fn read_log_bytes(dir: &Path) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(log_path(dir))?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(name: &str) -> TempDir {
            let p = std::env::temp_dir().join(format!(
                "xdl-wal-{}-{name}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn plan() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new())
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let ops = vec![
            WalOp::Rule("a(X, Y) :- p(X, Y).".into()),
            WalOp::Fact("p(1, 2)".into()),
            WalOp::Fact("p(2, 3)".into()),
        ];
        {
            let (mut wal, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            assert!(rec.ops.is_empty());
            for op in &ops {
                wal.append(op).unwrap();
            }
        }
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.ops, ops);
        assert_eq!(rec.from_log, 3);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = TempDir::new("torn");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            wal.append(&WalOp::Fact("p(1, 2)".into())).unwrap();
            wal.append(&WalOp::Fact("p(2, 3)".into())).unwrap();
        }
        // Simulate a crash mid-append: a record header announcing more
        // bytes than were written.
        let path = log_path(&dir.0);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"F p(9, 9").unwrap(); // short body
        drop(f);

        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_log, 2, "intact prefix survives");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "file physically truncated back to the last intact record"
        );
        // And the log accepts appends again.
        let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        wal.append(&WalOp::Fact("p(9, 9)".into())).unwrap();
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_log, 3);
    }

    #[test]
    fn corrupt_checksum_cuts_from_the_bad_record() {
        let dir = TempDir::new("crc");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            for i in 0..5 {
                wal.append(&WalOp::Fact(format!("p({i})"))).unwrap();
            }
        }
        // Flip one payload byte of the third record.
        let path = log_path(&dir.0);
        let mut bytes = std::fs::read(&path).unwrap();
        let rec_len = bytes.len() / 5;
        bytes[2 * rec_len + 9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_log, 2, "records before the corruption survive");
    }

    #[test]
    fn injected_fsync_failure_surfaces_as_error() {
        let dir = TempDir::new("fsync");
        let fault = plan();
        let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, Arc::clone(&fault)).unwrap();
        wal.append(&WalOp::Fact("p(1)".into())).unwrap();
        fault.fail_fsync(true);
        assert!(wal.append(&WalOp::Fact("p(2)".into())).is_err());
        fault.fail_fsync(false);
        wal.append(&WalOp::Fact("p(3)".into())).unwrap();
    }

    fn batch(pred: &str, arity: usize, rows: Vec<Vec<Value>>) -> RunBatch {
        RunBatch {
            pred: pred.to_string(),
            arity,
            rows: rows.into_iter().map(Vec::into_boxed_slice).collect(),
        }
    }

    #[test]
    fn compaction_swaps_in_a_manifest_and_truncates_log() {
        let dir = TempDir::new("compact");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 3, plan()).unwrap();
            wal.append(&WalOp::Rule("a(X) :- p(X).".into())).unwrap();
            wal.append(&WalOp::Fact("p(1)".into())).unwrap();
            wal.append(&WalOp::Fact("p(2)".into())).unwrap();
            assert!(wal.wants_compaction());
            wal.compact(
                &["a(X) :- p(X).".to_string()],
                &[batch(
                    "p",
                    1,
                    vec![vec![Value::int(1)], vec![Value::int(2)]],
                )],
            )
            .unwrap();
            assert!(!wal.wants_compaction());
            assert_eq!(std::fs::metadata(log_path(&dir.0)).unwrap().len(), 0);
            // Post-compaction appends land in the (empty) log.
            wal.append(&WalOp::Fact("p(3)".into())).unwrap();
        }
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 3, plan()).unwrap();
        assert_eq!(rec.rules, vec!["a(X) :- p(X).".to_string()]);
        assert_eq!(rec.run_files, 1);
        assert_eq!(rec.run_rows, 2);
        assert_eq!(rec.batches[0].rows[1], vec![Value::int(2)].into());
        assert_eq!(rec.from_log, 1);
        assert_eq!(
            rec.ops.last(),
            Some(&WalOp::Fact("p(3)".into())),
            "log tail replays after (on top of) the batches"
        );
    }

    #[test]
    fn run_files_roundtrip_typed_values_and_gc_old_generations() {
        let dir = TempDir::new("runfiles");
        let rows = vec![
            vec![Value::sym("alice"), Value::int(-7)],
            vec![
                Value::sym("bob with spaces? no: üñïçödé"),
                Value::int(i64::MAX),
            ],
        ];
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            wal.compact(&[], &[batch("edge", 2, rows.clone())]).unwrap();
            // A second compaction supersedes the first generation.
            wal.compact(&[], &[batch("edge", 2, rows.clone())]).unwrap();
        }
        let runs: Vec<String> = std::fs::read_dir(&dir.0)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("run-"))
            .collect();
        assert_eq!(runs.len(), 1, "old generations GCed: {runs:?}");
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].pred, "edge");
        let got: Vec<Vec<Value>> = rec.batches[0].rows.iter().map(|r| r.to_vec()).collect();
        assert_eq!(got, rows, "symbols and ints roundtrip by value");
    }

    #[test]
    fn corrupt_run_file_is_salvaged_around() {
        let dir = TempDir::new("runcorrupt");
        {
            let (mut wal, _) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
            wal.compact(
                &[],
                &[
                    batch("p", 1, vec![vec![Value::int(1)]]),
                    batch("q", 1, vec![vec![Value::int(2)]]),
                ],
            )
            .unwrap();
        }
        // Flip a byte in q's run file (the second one named in the manifest).
        let manifest = std::fs::read_to_string(manifest_path(&dir.0)).unwrap();
        let qfile = manifest
            .lines()
            .filter_map(|l| l.strip_prefix("run "))
            .map(|l| l.split(' ').next().unwrap())
            .nth(1)
            .unwrap();
        let mut bytes = std::fs::read(dir.0.join(qfile)).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        std::fs::write(dir.0.join(qfile), &bytes).unwrap();
        let (_, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.run_files, 1, "intact batch survives");
        assert_eq!(rec.batches[0].pred, "p");
    }

    #[test]
    fn legacy_snapshot_dat_is_still_read() {
        let dir = TempDir::new("legacy");
        // Hand-write a pre-manifest snapshot.dat in the record format.
        let ops = vec![
            WalOp::Rule("a(X) :- p(X).".into()),
            WalOp::Fact("p(1)".into()),
        ];
        let mut buf = Vec::new();
        for op in &ops {
            buf.extend_from_slice(&encode_record(op));
        }
        std::fs::write(snapshot_path(&dir.0), &buf).unwrap();
        let (mut wal, rec) = Wal::open(&dir.0, FsyncPolicy::Always, 0, plan()).unwrap();
        assert_eq!(rec.from_snapshot, 2);
        assert_eq!(rec.ops, ops);
        assert!(rec.batches.is_empty());
        // The next compaction upgrades in place: manifest written, legacy
        // snapshot removed.
        wal.compact(
            &["a(X) :- p(X).".to_string()],
            &[batch("p", 1, vec![vec![Value::int(1)]])],
        )
        .unwrap();
        assert!(manifest_path(&dir.0).exists());
        assert!(!snapshot_path(&dir.0).exists());
    }

    #[test]
    fn fsync_policy_parse_words() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::EveryN(64)));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}

//! The prepared-query cache and its invalidation logic.
//!
//! Keyed by the paper's query *form* — `(rule-set fingerprint, query
//! predicate, existential adornment)` — each entry stores the fully
//! optimized program from `datalog-opt` ([`PreparedProgram`]), so a repeat
//! of the same form skips the optimizer entirely. On top of that, each
//! entry carries a one-slot *answer* cache: the rendered payload of the
//! last evaluation, tagged with the per-predicate snapshot watermarks of
//! the form's EDB support set. A later identical query can reuse the
//! payload iff none of the supporting relations has grown past the
//! recorded watermark.
//!
//! Ingestion invalidates *incrementally*: a new fact for predicate `p`
//! clears the answer slots only of entries whose optimized program
//! transitively reads `p` (the dependency analysis of
//! `datalog_opt::prepare::edb_support`, built on the same reachability
//! machinery as the §3.1 connected-components phase). Prepared programs
//! themselves are never invalidated by facts — the optimization depends
//! only on the rules, which the fingerprint tracks.

use std::collections::BTreeMap;

use datalog_ast::PredRef;
use datalog_opt::PreparedProgram;

/// Cache key: the query form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FormKey {
    /// [`datalog_opt::fingerprint_rules`] of the server's rule set.
    pub fingerprint: u64,
    /// Base name of the query predicate.
    pub pred: String,
    /// The existential adornment, rendered (`"nd"`).
    pub adornment: String,
}

/// A memoized answer payload, valid while the support watermarks hold.
#[derive(Debug, Clone)]
pub struct CachedAnswers {
    /// Rendered query atom the payload answers (column names and constants
    /// matter for byte-identity, not just the form).
    pub query_repr: String,
    /// `(pred, committed row count)` for every predicate in the form's EDB
    /// support set, at evaluation time.
    pub watermarks: Vec<(PredRef, usize)>,
    /// The exact payload `QUERY` returned (what `xdl run` would print).
    pub payload: String,
    /// Number of answers (for the response header).
    pub answers: usize,
}

/// One cache entry: the prepared program plus reuse bookkeeping.
#[derive(Debug)]
pub struct Entry {
    /// The optimizer's output for this form.
    pub prepared: PreparedProgram,
    /// One-slot answer cache.
    pub answers: Option<CachedAnswers>,
    /// How often this form was served without re-optimizing.
    pub hits: u64,
    /// LRU clock value of the last use.
    last_used: u64,
}

/// The prepared-query cache: bounded, LRU-evicted.
#[derive(Debug)]
pub struct PreparedCache {
    entries: BTreeMap<FormKey, Entry>,
    capacity: usize,
    clock: u64,
    /// Total answer-slot invalidations caused by ingestion.
    pub invalidations: u64,
}

impl PreparedCache {
    /// Cache holding at most `capacity` prepared forms.
    pub fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            invalidations: 0,
        }
    }

    /// Number of prepared forms currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a form, bumping its LRU clock. Callers decide whether the
    /// access counts as a reuse (bump [`Entry::hits`] themselves) — the
    /// bookkeeping lookup after an evaluation should not inflate the count.
    pub fn get_mut(&mut self, key: &FormKey) -> Option<&mut Entry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_used = clock;
            e
        })
    }

    /// Insert a freshly prepared form and return it, evicting the least
    /// recently used entry if the cache is full.
    pub fn insert(&mut self, key: FormKey, prepared: PreparedProgram) -> &mut Entry {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.clock += 1;
        let clock = self.clock;
        self.entries.entry(key).or_insert(Entry {
            prepared,
            answers: None,
            hits: 0,
            last_used: clock,
        })
    }

    /// A fact arrived for (base) predicate `pred`: drop the answer slot of
    /// every dependent entry. Returns how many slots were cleared.
    pub fn invalidate_edb(&mut self, pred: &PredRef) -> usize {
        let mut cleared = 0;
        for e in self.entries.values_mut() {
            if e.answers.is_some() && e.prepared.depends_on(pred) {
                e.answers = None;
                cleared += 1;
            }
        }
        self.invalidations += cleared as u64;
        cleared
    }

    /// Total prepared-form hits across all entries.
    pub fn total_hits(&self) -> u64 {
        self.entries.values().map(|e| e.hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, Adornment};
    use datalog_opt::{fingerprint_rules, prepare, OptimizerConfig};

    fn prep(src: &str, pred: &str, ad: &str) -> (FormKey, PreparedProgram) {
        let p = parse_program(src).unwrap().program;
        let adornment = Adornment::parse(ad).unwrap();
        let prepared = prepare(
            &p.rules,
            &PredRef::new(pred),
            &adornment,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let key = FormKey {
            fingerprint: fingerprint_rules(&p.rules),
            pred: pred.to_string(),
            adornment: ad.to_string(),
        };
        (key, prepared)
    }

    #[test]
    fn lru_eviction_keeps_recent_forms() {
        let mut cache = PreparedCache::new(2);
        let (k1, p1) = prep("a(X, Y) :- p(X, Y).\n?- a(X, _).", "a", "nd");
        let (k2, p2) = prep("b(X, Y) :- q(X, Y).\n?- b(X, _).", "b", "nd");
        let (k3, p3) = prep("c(X, Y) :- r(X, Y).\n?- c(X, _).", "c", "nd");
        cache.insert(k1.clone(), p1);
        cache.insert(k2.clone(), p2);
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get_mut(&k1).is_some());
        cache.insert(k3.clone(), p3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get_mut(&k2).is_none(), "LRU entry evicted");
        assert!(cache.get_mut(&k1).is_some());
        assert!(cache.get_mut(&k3).is_some());
    }

    #[test]
    fn invalidation_is_dependency_scoped() {
        let mut cache = PreparedCache::new(8);
        let (k1, p1) = prep("a(X, Y) :- p(X, Y).\n?- a(X, _).", "a", "nd");
        let (k2, p2) = prep("b(X, Y) :- q(X, Y).\n?- b(X, _).", "b", "nd");
        let stale = CachedAnswers {
            query_repr: "x".into(),
            watermarks: vec![],
            payload: String::new(),
            answers: 0,
        };
        cache.insert(k1.clone(), p1).answers = Some(stale.clone());
        cache.insert(k2.clone(), p2).answers = Some(stale);
        // A fact for p invalidates only the form over a (which reads p).
        assert_eq!(cache.invalidate_edb(&PredRef::new("p")), 1);
        assert!(cache.get_mut(&k1).unwrap().answers.is_none());
        assert!(cache.get_mut(&k2).unwrap().answers.is_some());
        // An unrelated predicate invalidates nothing.
        assert_eq!(cache.invalidate_edb(&PredRef::new("zzz")), 0);
        assert_eq!(cache.invalidations, 1);
    }
}

//! The prepared-query cache and its invalidation logic.
//!
//! Keyed by the paper's query *form* — `(rule-set fingerprint, query
//! predicate, existential adornment)` — each entry stores the fully
//! optimized program from `datalog-opt` ([`PreparedProgram`]), so a repeat
//! of the same form skips the optimizer entirely. On top of that, each
//! entry carries a one-slot *answer* cache: the rendered payload of the
//! last evaluation, tagged with the per-predicate snapshot watermarks of
//! the form's EDB support set. A later identical query can reuse the
//! payload iff none of the supporting relations has grown past the
//! recorded watermark.
//!
//! Ingestion invalidates *incrementally*: a new fact for predicate `p`
//! clears the answer slots only of entries whose optimized program
//! transitively reads `p` (the dependency analysis of
//! `datalog_opt::prepare::edb_support`, built on the same reachability
//! machinery as the §3.1 connected-components phase). Prepared programs
//! themselves are never invalidated by facts — the optimization depends
//! only on the rules, which the fingerprint tracks.

//! Since PR 7 an entry may additionally *pin a resident evaluation*
//! ([`ResidentForm`]): the retained semi-naive state of
//! [`datalog_engine::incremental::ResidentEval`] plus, per support
//! predicate, how many rows of the shared EDB store have been applied to
//! it. Ingestion then becomes *propagation* instead of invalidation for
//! these forms: the server pushes exactly the rows between the applied
//! counts and the current watermarks through the resident deltas. Resident
//! state is memory-heavy (a full saturated database per form), so it has
//! its own, separately bounded LRU inside the prepared cache
//! (`--resident-forms=N`; 0 disables pinning entirely and restores the
//! invalidate-and-recompute behavior).

//! Since PR 9 residents are wrapped in `Arc<Mutex<…>>` so that a drain
//! can propagate deltas *without holding the global cache lock*: the
//! ingest path only flips cheap bookkeeping (`pending_since`,
//! `drain_queued`) under the cache mutex, and the actual propagation
//! locks one form at a time. The lock order is always cache → form, and
//! the cache lock is never held while waiting on a form lock that a
//! drain holds (readers use `try_lock` and fall back to the stale answer
//! memo). The answer memo itself is no longer cleared by ingestion — it
//! is *marked stale* and kept, becoming the serve-while-draining asset
//! for bounded-staleness reads (its age is a correct upper staleness
//! bound: every row it misses arrived after it was published).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use datalog_ast::PredRef;
use datalog_engine::incremental::ResidentEval;
use datalog_opt::PreparedProgram;

/// Cache key: the query form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FormKey {
    /// [`datalog_opt::fingerprint_rules`] of the server's rule set.
    pub fingerprint: u64,
    /// Base name of the query predicate.
    pub pred: String,
    /// The existential adornment, rendered (`"nd"`).
    pub adornment: String,
}

/// A memoized answer payload, valid while the support watermarks hold.
#[derive(Debug, Clone)]
pub struct CachedAnswers {
    /// Rendered query atom the payload answers (column names and constants
    /// matter for byte-identity, not just the form).
    pub query_repr: String,
    /// `(pred, committed row count)` for every predicate in the form's EDB
    /// support set, at evaluation time.
    pub watermarks: Vec<(PredRef, usize)>,
    /// The exact payload `QUERY` returned (what `xdl run` would print).
    pub payload: String,
    /// Number of answers (for the response header).
    pub answers: usize,
    /// Frontier version the payload was rendered at (the resident's
    /// [`Frontier::version`](datalog_engine::incremental::Frontier) for
    /// resident serves, the DB snapshot version for cold evaluations).
    pub frontier: u64,
    /// When the payload was rendered. `now - published_at` bounds the
    /// staleness of serving this memo: every row it misses arrived later.
    pub published_at: Instant,
    /// Set by ingestion instead of dropping the slot: the payload no
    /// longer reflects every acknowledged fact, but remains servable to
    /// bounded-staleness readers while a drain is in flight.
    pub stale: bool,
}

/// Retained incremental evaluation for one form: the resident frontier
/// plus how far into each shared relation it has been advanced.
#[derive(Debug)]
pub struct ResidentForm {
    /// The resident semi-naive state (owns the saturated database).
    pub eval: ResidentEval,
    /// Per support predicate: count of shared-store rows already applied.
    /// Catch-up reads `rows_from(pred, applied[pred])` up to the current
    /// watermark — idempotent (the resident dedups) and gap-free (the
    /// shared store is append-only).
    pub applied: BTreeMap<PredRef, usize>,
}

/// One cache entry: the prepared program plus reuse bookkeeping.
#[derive(Debug)]
pub struct Entry {
    /// The optimizer's output for this form.
    pub prepared: PreparedProgram,
    /// One-slot answer cache.
    pub answers: Option<CachedAnswers>,
    /// Pinned resident evaluation, if this form is being maintained
    /// incrementally (bounded separately — see [`PreparedCache::pin_resident`]).
    /// Shared so drains can propagate without holding the cache lock;
    /// lock order is cache → form, and the cache lock must never be held
    /// while *blocking* on the form lock.
    pub resident: Option<Arc<Mutex<ResidentForm>>>,
    /// Mirror of the resident's applied watermarks, maintained under the
    /// cache lock (written when a drain finishes). Lets the query path
    /// compute watermark lag without touching the form lock.
    pub applied_mirror: BTreeMap<PredRef, usize>,
    /// Earliest instant at which rows the resident has *not* applied may
    /// have arrived (`None` = fully drained at last check). Set to the
    /// drain's snapshot-capture time when lag remains: any row beyond
    /// that snapshot arrived after it was captured, so `now -
    /// pending_since` is a correct upper staleness bound.
    pub pending_since: Option<Instant>,
    /// A background drain or rebuild for this form is queued or running —
    /// suppresses duplicate maintenance jobs.
    pub drain_queued: bool,
    /// Consecutive failed rebuild attempts since the last healthy drain
    /// (drives the capped exponential backoff; reset on success).
    pub rebuild_attempts: u32,
    /// How often this form was served without re-optimizing.
    pub hits: u64,
    /// LRU clock value of the last use.
    last_used: u64,
}

impl Entry {
    /// Drop resident state and every piece of bookkeeping that describes
    /// it (used by eviction, poisoning, and capacity shrink).
    pub fn clear_resident(&mut self) {
        self.resident = None;
        self.applied_mirror.clear();
        self.pending_since = None;
    }
}

/// The prepared-query cache: bounded, LRU-evicted.
#[derive(Debug)]
pub struct PreparedCache {
    entries: BTreeMap<FormKey, Entry>,
    capacity: usize,
    /// Resident-form bound (0 = pinning disabled). Independent of
    /// `capacity`: prepared programs are cheap, resident databases are not.
    resident_capacity: usize,
    clock: u64,
    /// Total answer-slot invalidations caused by ingestion.
    pub invalidations: u64,
    /// Times an eligible query found its resident evicted (or poisoned)
    /// and had to recompute from cold.
    pub fallback_recomputes: u64,
}

impl PreparedCache {
    /// Cache holding at most `capacity` prepared forms.
    pub fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            resident_capacity: 0,
            clock: 0,
            invalidations: 0,
            fallback_recomputes: 0,
        }
    }

    /// Bound the number of entries allowed to hold a [`ResidentForm`]
    /// (0 disables pinning). Shrinking below the current resident count
    /// drops the least recently used residents immediately.
    pub fn set_resident_capacity(&mut self, n: usize) {
        self.resident_capacity = n;
        while self.resident_count() > self.resident_capacity {
            self.evict_one_resident(None);
        }
    }

    /// Entries currently holding resident state.
    pub fn resident_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.resident.is_some())
            .count()
    }

    /// Drop the least recently used resident (excluding `keep`, if given).
    fn evict_one_resident(&mut self, keep: Option<&FormKey>) {
        if let Some(victim) = self
            .entries
            .iter()
            .filter(|(k, e)| e.resident.is_some() && Some(*k) != keep)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            if let Some(e) = self.entries.get_mut(&victim) {
                e.clear_resident();
            }
        }
    }

    /// Pin resident state onto an existing entry, evicting the least
    /// recently used other resident if the bound is reached. Returns
    /// `false` (dropping `form`) when pinning is disabled or the entry is
    /// gone — both fine: the form simply falls back to recompute.
    pub fn pin_resident(&mut self, key: &FormKey, form: ResidentForm) -> bool {
        if self.resident_capacity == 0 || !self.entries.contains_key(key) {
            return false;
        }
        while self.resident_count() >= self.resident_capacity
            && self.entries.get(key).is_some_and(|e| e.resident.is_none())
        {
            self.evict_one_resident(Some(key));
        }
        if let Some(e) = self.entries.get_mut(key) {
            e.applied_mirror = form.applied.clone();
            e.pending_since = None;
            e.rebuild_attempts = 0;
            e.resident = Some(Arc::new(Mutex::new(form)));
            true
        } else {
            false
        }
    }

    /// Iterate every entry (key + mutable entry), without touching LRU
    /// clocks — ingestion-side catch-up walks residents through this.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&FormKey, &mut Entry)> {
        self.entries.iter_mut()
    }

    /// Number of prepared forms currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a form *without* bumping its LRU clock — maintenance
    /// bookkeeping (finishing a drain, recording a rebuild) must not make
    /// a form look recently used.
    pub fn peek_mut(&mut self, key: &FormKey) -> Option<&mut Entry> {
        self.entries.get_mut(key)
    }

    /// Look up a form, bumping its LRU clock. Callers decide whether the
    /// access counts as a reuse (bump [`Entry::hits`] themselves) — the
    /// bookkeeping lookup after an evaluation should not inflate the count.
    pub fn get_mut(&mut self, key: &FormKey) -> Option<&mut Entry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_used = clock;
            e
        })
    }

    /// Insert a freshly prepared form and return it, evicting the least
    /// recently used entry if the cache is full.
    pub fn insert(&mut self, key: FormKey, prepared: PreparedProgram) -> &mut Entry {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.clock += 1;
        let clock = self.clock;
        self.entries.entry(key).or_insert(Entry {
            prepared,
            answers: None,
            resident: None,
            applied_mirror: BTreeMap::new(),
            pending_since: None,
            drain_queued: false,
            rebuild_attempts: 0,
            hits: 0,
            last_used: clock,
        })
    }

    /// A fact arrived for (base) predicate `pred`: mark the answer slot of
    /// every dependent entry stale. The payload is *kept* — it remains the
    /// serve-while-draining asset for bounded-staleness readers, whose
    /// staleness it bounds by its age. Returns how many live slots were
    /// newly staled.
    pub fn invalidate_edb(&mut self, pred: &PredRef) -> usize {
        let mut staled = 0;
        for e in self.entries.values_mut() {
            if let Some(ans) = e.answers.as_mut() {
                if !ans.stale && e.prepared.depends_on(pred) {
                    ans.stale = true;
                    staled += 1;
                }
            }
        }
        self.invalidations += staled as u64;
        staled
    }

    /// Total prepared-form hits across all entries.
    pub fn total_hits(&self) -> u64 {
        self.entries.values().map(|e| e.hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, Adornment};
    use datalog_opt::{fingerprint_rules, prepare, OptimizerConfig};

    fn prep(src: &str, pred: &str, ad: &str) -> (FormKey, PreparedProgram) {
        let p = parse_program(src).unwrap().program;
        let adornment = Adornment::parse(ad).unwrap();
        let prepared = prepare(
            &p.rules,
            &PredRef::new(pred),
            &adornment,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let key = FormKey {
            fingerprint: fingerprint_rules(&p.rules),
            pred: pred.to_string(),
            adornment: ad.to_string(),
        };
        (key, prepared)
    }

    #[test]
    fn lru_eviction_keeps_recent_forms() {
        let mut cache = PreparedCache::new(2);
        let (k1, p1) = prep("a(X, Y) :- p(X, Y).\n?- a(X, _).", "a", "nd");
        let (k2, p2) = prep("b(X, Y) :- q(X, Y).\n?- b(X, _).", "b", "nd");
        let (k3, p3) = prep("c(X, Y) :- r(X, Y).\n?- c(X, _).", "c", "nd");
        cache.insert(k1.clone(), p1);
        cache.insert(k2.clone(), p2);
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get_mut(&k1).is_some());
        cache.insert(k3.clone(), p3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get_mut(&k2).is_none(), "LRU entry evicted");
        assert!(cache.get_mut(&k1).is_some());
        assert!(cache.get_mut(&k3).is_some());
    }

    fn resident(src: &str) -> ResidentForm {
        use datalog_engine::{EvalOptions, FactSet};
        let p = parse_program(src).unwrap().program;
        ResidentForm {
            eval: ResidentEval::new(&p, &FactSet::new(), &EvalOptions::default()).unwrap(),
            applied: BTreeMap::new(),
        }
    }

    #[test]
    fn resident_pinning_is_bounded_by_its_own_lru() {
        let mut cache = PreparedCache::new(8);
        let (k1, p1) = prep("a(X, Y) :- p(X, Y).\n?- a(X, _).", "a", "nd");
        let (k2, p2) = prep("b(X, Y) :- q(X, Y).\n?- b(X, _).", "b", "nd");
        cache.insert(k1.clone(), p1);
        cache.insert(k2.clone(), p2);
        // Disabled: pinning refuses.
        assert!(!cache.pin_resident(&k1, resident("a(X, Y) :- p(X, Y).")));
        assert_eq!(cache.resident_count(), 0);
        cache.set_resident_capacity(1);
        assert!(cache.pin_resident(&k1, resident("a(X, Y) :- p(X, Y).")));
        assert_eq!(cache.resident_count(), 1);
        // Touch k2 then pin it: k1's resident is the LRU victim, but both
        // prepared entries survive.
        assert!(cache.get_mut(&k2).is_some());
        assert!(cache.pin_resident(&k2, resident("b(X, Y) :- q(X, Y).")));
        assert_eq!(cache.resident_count(), 1);
        assert!(cache.get_mut(&k1).unwrap().resident.is_none());
        assert!(cache.get_mut(&k2).unwrap().resident.is_some());
        assert_eq!(cache.len(), 2);
        // Shrinking to zero drops the survivor too.
        cache.set_resident_capacity(0);
        assert_eq!(cache.resident_count(), 0);
    }

    #[test]
    fn prepared_eviction_takes_the_resident_with_it() {
        let mut cache = PreparedCache::new(1);
        cache.set_resident_capacity(4);
        let (k1, p1) = prep("a(X, Y) :- p(X, Y).\n?- a(X, _).", "a", "nd");
        let (k2, p2) = prep("b(X, Y) :- q(X, Y).\n?- b(X, _).", "b", "nd");
        cache.insert(k1.clone(), p1);
        assert!(cache.pin_resident(&k1, resident("a(X, Y) :- p(X, Y).")));
        cache.insert(k2, p2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_count(), 0, "evicted entry drops its state");
        assert!(cache.get_mut(&k1).is_none());
    }

    #[test]
    fn invalidation_is_dependency_scoped() {
        let mut cache = PreparedCache::new(8);
        let (k1, p1) = prep("a(X, Y) :- p(X, Y).\n?- a(X, _).", "a", "nd");
        let (k2, p2) = prep("b(X, Y) :- q(X, Y).\n?- b(X, _).", "b", "nd");
        let memo = CachedAnswers {
            query_repr: "x".into(),
            watermarks: vec![],
            payload: String::new(),
            answers: 0,
            frontier: 1,
            published_at: Instant::now(),
            stale: false,
        };
        cache.insert(k1.clone(), p1).answers = Some(memo.clone());
        cache.insert(k2.clone(), p2).answers = Some(memo);
        // A fact for p stales only the form over a (which reads p) — the
        // payload survives as the serve-while-draining asset.
        assert_eq!(cache.invalidate_edb(&PredRef::new("p")), 1);
        let a1 = cache.get_mut(&k1).unwrap().answers.as_ref().unwrap();
        assert!(a1.stale);
        assert!(!cache.get_mut(&k2).unwrap().answers.as_ref().unwrap().stale);
        // An unrelated predicate stales nothing; re-staling is not
        // double-counted.
        assert_eq!(cache.invalidate_edb(&PredRef::new("zzz")), 0);
        assert_eq!(cache.invalidate_edb(&PredRef::new("p")), 0);
        assert_eq!(cache.invalidations, 1);
    }
}

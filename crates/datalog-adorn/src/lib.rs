//! # datalog-adorn
//!
//! The existential **adornment algorithm** of §2 of *Optimizing Existential
//! Datalog Queries* (Ramakrishnan, Beeri, Krishnamurthy; PODS 1988).
//!
//! Detecting existential arguments exactly is undecidable (Lemma 2.1 of the
//! paper), so the paper gives a sound syntactic test (Lemma 2.2): starting
//! from the query's `n`/`d` pattern, an argument of a body literal is
//! adorned `d` (don't-care) when its variable occurs nowhere else in the
//! rule except possibly in `d` arguments of the head; the adorned head
//! determines which adorned versions of each predicate must be generated,
//! and the process closes over a worklist. The result is the adorned
//! program `P^{e,ad}`.
//!
//! This crate also implements the paper's *semantic definition* of an
//! existential argument as a program transformation
//! ([`semantic::definition_transform`]): the transformed program is query
//! equivalent to the original iff the argument is existential. Since that
//! equivalence is undecidable, the transformation is used by the test
//! suites together with `datalog-engine`'s randomized refutation oracle to
//! *refute* existentiality — and to check that every `d` the syntactic
//! algorithm produces survives refutation (soundness, Lemma 2.2).

pub mod semantic;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use datalog_ast::{Ad, Adornment, AstError, Atom, PredRef, Program, Query, Rule, Term, Var};

/// Errors from the adornment algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdornError {
    /// Structural problem in the input program.
    Ast(AstError),
    /// The program has no query to adorn from.
    NoQuery,
    /// The query was explicitly adorned with an adornment whose length does
    /// not match the query atom's arity.
    QueryAdornmentLength { adornment: String, arity: usize },
    /// The input program already contains adorned predicates; adornment
    /// must run on a plain program.
    AlreadyAdorned { pred: String },
}

impl std::fmt::Display for AdornError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdornError::Ast(e) => write!(f, "{e}"),
            AdornError::NoQuery => write!(f, "program has no query to adorn from"),
            AdornError::QueryAdornmentLength { adornment, arity } => write!(
                f,
                "query adornment '{adornment}' does not match query arity {arity}"
            ),
            AdornError::AlreadyAdorned { pred } => {
                write!(f, "program already contains adorned predicate {pred}")
            }
        }
    }
}

impl std::error::Error for AdornError {}

impl From<AstError> for AdornError {
    fn from(e: AstError) -> AdornError {
        AdornError::Ast(e)
    }
}

/// Result of adorning a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdornResult {
    /// The adorned program `P^{e,ad}`. Only rules reachable from the query
    /// appear (the algorithm generates rules on demand from the query).
    pub program: Program,
    /// The adorned versions generated for each base predicate.
    pub versions: BTreeMap<PredRef, BTreeSet<Adornment>>,
}

impl AdornResult {
    /// Total number of adorned predicate versions.
    pub fn version_count(&self) -> usize {
        self.versions.values().map(|s| s.len()).sum()
    }
}

/// Derive the query's adornment from its atom: wildcard variables are
/// existential (`d`), named variables and constants are needed (`n`).
///
/// If the query predicate is written with an explicit adornment
/// (`?- a[nd](X, Y)`), that adornment is used as given.
pub fn query_adornment(query: &Query) -> Result<Adornment, AdornError> {
    if let Some(ad) = &query.atom.pred.adornment {
        if ad.len() != query.atom.arity() {
            return Err(AdornError::QueryAdornmentLength {
                adornment: ad.to_string(),
                arity: query.atom.arity(),
            });
        }
        return Ok(ad.clone());
    }
    Ok(query
        .atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) if v.is_wildcard() => Ad::D,
            _ => Ad::N,
        })
        .collect())
}

/// The §2 adornment algorithm.
///
/// Returns the adorned program: the query predicate and every derived
/// predicate reachable from it are replaced by adorned versions; base (EDB)
/// predicates are left unadorned (their relations are shared). If the query
/// predicate is a base predicate there is nothing to adorn and the program
/// is returned unchanged.
pub fn adorn(program: &Program) -> Result<AdornResult, AdornError> {
    program.validate()?;
    // Rules must be unadorned; the query atom MAY carry an explicit
    // adornment (that is how callers request an existential query form).
    for r in &program.rules {
        for p in std::iter::once(&r.head.pred)
            .chain(r.body.iter().map(|a| &a.pred))
            .chain(r.negative.iter().map(|a| &a.pred))
        {
            if p.is_adorned() {
                return Err(AdornError::AlreadyAdorned {
                    pred: p.to_string(),
                });
            }
        }
    }
    let query = program.query.as_ref().ok_or(AdornError::NoQuery)?;
    let idb = program.idb_preds();

    let query_ad = query_adornment(query)?;
    if !idb.contains(&query.atom.pred.base()) {
        // Query over a base predicate: nothing to adorn.
        return Ok(AdornResult {
            program: program.clone(),
            versions: BTreeMap::new(),
        });
    }

    let mut out = Program::default();
    let mut versions: BTreeMap<PredRef, BTreeSet<Adornment>> = BTreeMap::new();
    let mut queue: VecDeque<(PredRef, Adornment)> = VecDeque::new();
    let mut seen: BTreeSet<(PredRef, Adornment)> = BTreeSet::new();

    let qbase = query.atom.pred.base();
    queue.push_back((qbase.clone(), query_ad.clone()));
    seen.insert((qbase.clone(), query_ad.clone()));

    while let Some((pred, ad)) = queue.pop_front() {
        versions.entry(pred.clone()).or_default().insert(ad.clone());
        for &ri in &program.rules_for(&pred) {
            let rule = &program.rules[ri];
            let adorned = adorn_rule(rule, &ad, &idb);
            // Enqueue newly generated adorned versions.
            for lit in adorned.body.iter().chain(adorned.negative.iter()) {
                if let Some(a1) = &lit.pred.adornment {
                    let key = (lit.pred.base(), a1.clone());
                    if seen.insert(key.clone()) {
                        queue.push_back(key);
                    }
                }
            }
            out.rules.push(adorned);
        }
    }

    // Rewrite the query to use the adorned predicate (argument list
    // unchanged; projection happens in a later phase).
    let mut qatom = query.atom.clone();
    qatom.pred = qbase.with_adornment(query_ad);
    out.query = Some(Query::new(qatom));
    Ok(AdornResult {
        program: out,
        versions,
    })
}

/// Adorn one rule for head adornment `head_ad` (§2, Lemma 2.2):
/// a body argument is `d` iff it holds a variable whose only other
/// occurrences (if any) are in `d` positions of the head.
fn adorn_rule(rule: &Rule, head_ad: &Adornment, idb: &BTreeSet<PredRef>) -> Rule {
    debug_assert_eq!(rule.head.arity(), head_ad.len());
    // Occurrence counts across the body. Negated literals count too: a
    // variable checked by a negation is needed (its value matters).
    let mut body_occ: BTreeMap<Var, usize> = BTreeMap::new();
    for lit in rule.body.iter().chain(rule.negative.iter()) {
        for v in lit.var_occurrences() {
            *body_occ.entry(v).or_insert(0) += 1;
        }
    }
    // Head positions per variable, split by adornment.
    let mut head_needs: BTreeSet<Var> = BTreeSet::new();
    for (i, t) in rule.head.terms.iter().enumerate() {
        if let Term::Var(v) = t {
            if head_ad[i] == Ad::N {
                head_needs.insert(*v);
            }
        }
    }
    let head_vars: BTreeSet<Var> = rule.head.var_occurrences().collect();

    let is_existential = |v: &Var| -> bool {
        body_occ.get(v).copied().unwrap_or(0) == 1
            && (!head_vars.contains(v) || !head_needs.contains(v))
    };

    let head = Atom {
        pred: rule.head.pred.with_adornment(head_ad.clone()),
        terms: rule.head.terms.clone(),
    };
    // Negated derived literals are adorned all-needed: negation-as-failure
    // tests a specific tuple, so every position's value matters.
    let negative = rule
        .negative
        .iter()
        .map(|lit| {
            if idb.contains(&lit.pred) {
                Atom {
                    pred: lit.pred.with_adornment(Adornment::all_needed(lit.arity())),
                    terms: lit.terms.clone(),
                }
            } else {
                lit.clone()
            }
        })
        .collect();
    let body = rule
        .body
        .iter()
        .map(|lit| {
            let ad: Adornment = lit
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(_) => Ad::N,
                    Term::Var(v) => {
                        if is_existential(v) {
                            Ad::D
                        } else {
                            Ad::N
                        }
                    }
                })
                .collect();
            if idb.contains(&lit.pred) {
                Atom {
                    pred: lit.pred.with_adornment(ad),
                    terms: lit.terms.clone(),
                }
            } else {
                // Base predicates keep their (single, stored) relation.
                lit.clone()
            }
        })
        .collect();
    Rule::with_negation(head, body, negative)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn adorn_text(src: &str) -> AdornResult {
        adorn(&parse_program(src).unwrap().program).unwrap()
    }

    /// Example 1 of the paper: right-recursive transitive closure with an
    /// existential query.
    #[test]
    fn example_1_right_recursive_tc() {
        let r = adorn_text(
            "query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
        );
        let text = r.program.to_text();
        assert!(text.contains("query[n](X) :- a[nd](X, Y)."));
        assert!(text.contains("a[nd](X, Y) :- p(X, Z), a[nd](Z, Y)."));
        assert!(text.contains("a[nd](X, Y) :- p(X, Y)."));
        assert_eq!(r.program.rules.len(), 3);
        // a has exactly one adorned version: nd.
        let a_versions = &r.versions[&PredRef::new("a")];
        assert_eq!(a_versions.len(), 1);
        assert!(a_versions.contains(&Adornment::parse("nd").unwrap()));
    }

    /// Example 5 of the paper: left-recursive TC. The query form a[nd]
    /// needs the full a[nn] internally.
    #[test]
    fn example_5_left_recursive_tc_needs_two_versions() {
        let r = adorn_text(
            "a(X, Y) :- a(X, Z), p(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        );
        let text = r.program.to_text();
        // Query form: a[nd]; recursive rule forces a[nn].
        assert!(
            text.contains("a[nd](X, Y) :- a[nn](X, Z), p(Z, Y)."),
            "{text}"
        );
        assert!(
            text.contains("a[nn](X, Y) :- a[nn](X, Z), p(Z, Y)."),
            "{text}"
        );
        assert!(text.contains("a[nn](X, Y) :- p(X, Y)."), "{text}");
        let a_versions = &r.versions[&PredRef::new("a")];
        assert_eq!(a_versions.len(), 2);
        assert_eq!(r.program.rules.len(), 4);
    }

    #[test]
    fn wildcard_query_positions_become_d() {
        let q = Query::new(datalog_ast::parse_atom("a(X, _, 3)").unwrap());
        let ad = query_adornment(&q).unwrap();
        assert_eq!(ad.to_string(), "ndn");
    }

    #[test]
    fn explicit_query_adornment_is_respected() {
        let r = adorn_text(
            "a(X, Y) :- p(X, Y).\n\
             ?- a[dn](X, Y).",
        );
        let text = r.program.to_text();
        assert!(text.contains("a[dn](X, Y) :- p(X, Y)."));
        // Mismatched length errors out at validation.
        let p = parse_program("a(X, Y) :- p(X, Y).\n?- a[n](X, Y).")
            .unwrap()
            .program;
        assert!(adorn(&p).is_err());
        // Post-projection-style query adornment (needed-count matches but
        // full length does not) is reported as QueryAdornmentLength.
        let p = parse_program("a(X, Y) :- p(X, Y).\n?- a[nd](X).")
            .unwrap()
            .program;
        assert!(matches!(
            adorn(&p),
            Err(AdornError::QueryAdornmentLength { .. })
        ));
    }

    #[test]
    fn repeated_body_variable_is_needed() {
        // Y occurs twice in the body: join variable, so 'n' everywhere.
        let r = adorn_text(
            "q(X) :- a(X, Y), b(Y).\n\
             a(X, Y) :- p(X, Y).\n\
             b(Y) :- s(Y).\n\
             ?- q(X).",
        );
        let text = r.program.to_text();
        assert!(text.contains("q[n](X) :- a[nn](X, Y), b[n](Y)."), "{text}");
    }

    #[test]
    fn repeated_var_within_one_literal_is_needed() {
        let r = adorn_text(
            "q(X) :- a(X, Y, Y).\n\
             a(X, Y, Z) :- p(X, Y, Z).\n\
             ?- q(X).",
        );
        let text = r.program.to_text();
        // Y appears twice (within the same literal): both positions 'n'.
        assert!(text.contains("q[n](X) :- a[nnn](X, Y, Y)."), "{text}");
    }

    #[test]
    fn head_d_variable_keeps_body_position_existential() {
        // Example 1's key step: Y existential in the head makes the
        // recursive occurrence's second argument 'd'.
        let r = adorn_text(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        );
        assert!(r
            .program
            .to_text()
            .contains("a[nd](X, Y) :- p(X, Z), a[nd](Z, Y)."));
    }

    #[test]
    fn head_n_variable_forces_needed() {
        // Same program, all-needed query: no 'd' anywhere.
        let r = adorn_text(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let text = r.program.to_text();
        assert!(text.contains("a[nn](X, Y) :- p(X, Z), a[nn](Z, Y)."));
        assert!(!text.contains("[nd]"));
    }

    #[test]
    fn constants_are_needed() {
        let r = adorn_text(
            "q(X) :- a(X, 3).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- q(X).",
        );
        assert!(r.program.to_text().contains("a[nn](X, 3)"));
    }

    #[test]
    fn unreachable_rules_are_dropped() {
        let r = adorn_text(
            "q(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             orphan(X) :- p(X, X).\n\
             ?- q(X).",
        );
        assert_eq!(r.program.rules.len(), 2);
        assert!(!r.program.to_text().contains("orphan"));
    }

    #[test]
    fn query_on_base_predicate_is_identity() {
        let p = parse_program("q(X) :- a(X).\n?- p(X, _).").unwrap().program;
        let r = adorn(&p).unwrap();
        assert_eq!(r.program, p);
        assert!(r.versions.is_empty());
    }

    #[test]
    fn no_query_is_an_error() {
        let p = parse_program("a(X, Y) :- p(X, Y).").unwrap().program;
        assert!(matches!(adorn(&p), Err(AdornError::NoQuery)));
    }

    #[test]
    fn already_adorned_program_is_rejected() {
        let p = parse_program("a[nd](X, Y) :- p(X, Y).\n?- a[nd](X, _).")
            .unwrap()
            .program;
        assert!(matches!(adorn(&p), Err(AdornError::AlreadyAdorned { .. })));
    }

    /// §2: "the adorned program usually has more rules than the original".
    #[test]
    fn zigzag_generates_multiple_versions() {
        // sg-like program where the existential position flips.
        let r = adorn_text(
            "s(X, Y) :- s(Y, X).\n\
             s(X, Y) :- p(X, Y).\n\
             ?- s(X, _).",
        );
        let versions = &r.versions[&PredRef::new("s")];
        // s[nd] calls s[dn] (swap), which calls s[nd] again.
        assert_eq!(versions.len(), 2);
        assert!(versions.contains(&Adornment::parse("nd").unwrap()));
        assert!(versions.contains(&Adornment::parse("dn").unwrap()));
        assert_eq!(r.program.rules.len(), 4);
    }

    #[test]
    fn boolean_zero_arity_head() {
        // Zero-arity derived predicate: empty adornment.
        let r = adorn_text(
            "ok :- p(X, Y).\n\
             ?- ok.",
        );
        let text = r.program.to_text();
        assert!(text.contains("ok[]"), "{text}");
    }
}

//! The *semantic* definition of an existential argument (§2 of the paper),
//! as an executable program transformation.
//!
//! The paper defines: the argument position of `Y` in a body literal
//! `p(X̄, Y)` of rule `r1` is existential iff replacing the literal by
//! `p'(X̄, Y')` — where `p'` agrees with `p` on the other columns but leaves
//! the `Y` column completely unconstrained — and renaming `Y` to `Y'` in the
//! head, yields a query-equivalent program.
//!
//! As written in the paper the defining rule `p'(X̄, Y') :- p(X̄, Y)` is
//! unsafe (`Y'` is unbound): the intended semantics is that `Y'` ranges over
//! the whole domain. We make that executable by introducing an explicit
//! domain predicate: `p'(X̄, Y') :- p(X̄, Y), $dom(Y')`, where `$dom` must be
//! populated with the active domain of the instance
//! ([`with_active_domain`] does this). Checking the equivalence is
//! undecidable (Lemma 2.1); `datalog-engine::bounded_equiv_check` is used by
//! the test suites to *refute* candidate existential arguments and to
//! validate the syntactic algorithm's `d` adornments on random instances.

use datalog_ast::{Atom, PredRef, Program, Rule, Term, Var};
use datalog_engine::FactSet;

/// Name of the generated domain predicate.
pub const DOM_PRED: &str = "$dom";

/// Errors from the definition transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefinitionError {
    /// The rule or literal index is out of range.
    BadIndex,
    /// The chosen argument is a constant, not a variable.
    NotAVariable,
}

impl std::fmt::Display for DefinitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefinitionError::BadIndex => write!(f, "rule/literal/argument index out of range"),
            DefinitionError::NotAVariable => {
                write!(f, "the selected argument position holds a constant")
            }
        }
    }
}

impl std::error::Error for DefinitionError {}

/// Apply the §2 definition transformation to argument `arg_idx` of body
/// literal `lit_idx` of rule `rule_idx`.
///
/// Returns the transformed program; it is query equivalent to the original
/// iff the argument position is existential (and the original program is
/// evaluated over instances augmented with their active domain, see
/// [`with_active_domain`]).
pub fn definition_transform(
    program: &Program,
    rule_idx: usize,
    lit_idx: usize,
    arg_idx: usize,
) -> Result<Program, DefinitionError> {
    let rule = program
        .rules
        .get(rule_idx)
        .ok_or(DefinitionError::BadIndex)?;
    let lit = rule.body.get(lit_idx).ok_or(DefinitionError::BadIndex)?;
    let term = lit.terms.get(arg_idx).ok_or(DefinitionError::BadIndex)?;
    let y = match term {
        Term::Var(v) => *v,
        Term::Const(_) => return Err(DefinitionError::NotAVariable),
    };

    let p = lit.pred.clone();
    let p_prime = PredRef::new(&format!("{}$prime", p.name));
    let y_prime = Var::fresh();

    // p'(X̄, Y') :- p(X̄, Y), $dom(Y').
    let mut prime_head_terms: Vec<Term> = Vec::with_capacity(lit.arity());
    let mut prime_body_terms: Vec<Term> = Vec::with_capacity(lit.arity());
    for (i, _) in lit.terms.iter().enumerate() {
        // Use canonical column variables to define p' once, independent of
        // the literal's own terms.
        let col = Var::new(&format!("C{i}"));
        prime_body_terms.push(Term::Var(col));
        if i == arg_idx {
            prime_head_terms.push(Term::Var(y_prime));
        } else {
            prime_head_terms.push(Term::Var(col));
        }
    }
    let prime_rule = Rule::new(
        Atom::new(p_prime.clone(), prime_head_terms),
        vec![
            Atom::new(p.clone(), prime_body_terms),
            Atom::new(PredRef::new(DOM_PRED), vec![Term::Var(y_prime)]),
        ],
    );

    let mut out = program.clone();
    // Replace the literal in r1 with p'(X̄, Y'); rename Y to Y' in the head.
    {
        let r = &mut out.rules[rule_idx];
        let mut new_lit = r.body[lit_idx].clone();
        new_lit.pred = p_prime;
        new_lit.terms[arg_idx] = Term::Var(y_prime);
        r.body[lit_idx] = new_lit;
        for t in r.head.terms.iter_mut() {
            if *t == Term::Var(y) {
                *t = Term::Var(y_prime);
            }
        }
    }
    out.rules.push(prime_rule);
    Ok(out)
}

/// Augment an instance with `$dom` facts for every constant in its active
/// domain (required to evaluate programs produced by
/// [`definition_transform`]).
pub fn with_active_domain(instance: &FactSet) -> FactSet {
    let mut out = instance.clone();
    let dom = PredRef::new(DOM_PRED);
    for v in instance.active_domain() {
        out.insert(dom.clone(), vec![v]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, Value};
    use datalog_engine::{query_answers, EvalOptions};

    /// The motivating §1.2 rule: `q(X,Y) :- a(X,Z), q(Z,Y), c(W)` — the
    /// position of `W` is existential.
    #[test]
    fn section_1_2_c_of_w_is_existential() {
        let src = "q(X, Y) :- a(X, Z), q(Z, Y), c(W).\n\
                   q(X, Y) :- b(X, Y).\n\
                   ?- q(X, Y).";
        let p = parse_program(src).unwrap().program;
        // Transform W's position (rule 0, literal 2, arg 0).
        let t = definition_transform(&p, 0, 2, 0).unwrap();
        assert!(t.to_text().contains("c$prime"));

        // On a concrete instance, answers agree.
        let mut inst = FactSet::new();
        inst.insert(PredRef::new("a"), vec![Value::int(1), Value::int(2)]);
        inst.insert(PredRef::new("b"), vec![Value::int(2), Value::int(3)]);
        inst.insert(PredRef::new("c"), vec![Value::int(9)]);
        let inst = with_active_domain(&inst);
        let (a1, _) = query_answers(&p, &inst, &EvalOptions::default()).unwrap();
        let (a2, _) = query_answers(&t, &inst, &EvalOptions::default()).unwrap();
        assert_eq!(a1.rows, a2.rows);
        assert!(!a1.is_empty());
    }

    /// A *needed* argument: scrambling it changes answers on some instance.
    #[test]
    fn needed_argument_is_refutable() {
        let src = "q(X) :- p(X, Y), s(Y).\n\
                   ?- q(X).";
        let p = parse_program(src).unwrap().program;
        // Scramble Y in p(X, Y) (rule 0, literal 0, arg 1): Y is a join
        // variable, so this must change answers.
        let t = definition_transform(&p, 0, 0, 1).unwrap();
        let mut inst = FactSet::new();
        inst.insert(PredRef::new("p"), vec![Value::int(1), Value::int(2)]);
        inst.insert(PredRef::new("s"), vec![Value::int(3)]);
        let inst = with_active_domain(&inst);
        let (a1, _) = query_answers(&p, &inst, &EvalOptions::default()).unwrap();
        let (a2, _) = query_answers(&t, &inst, &EvalOptions::default()).unwrap();
        // Original: no answer (2 ∉ s). Transformed: q(1) because Y' ranges
        // over the domain which includes 3.
        assert!(a1.is_empty());
        assert!(!a2.is_empty());
    }

    #[test]
    fn bad_indices_and_constants_error() {
        let p = parse_program("q(X) :- p(X, 3).\n?- q(X).").unwrap().program;
        assert_eq!(
            definition_transform(&p, 5, 0, 0).unwrap_err(),
            DefinitionError::BadIndex
        );
        assert_eq!(
            definition_transform(&p, 0, 0, 1).unwrap_err(),
            DefinitionError::NotAVariable
        );
    }
}

//! # datalog-ast
//!
//! Abstract syntax, text format, and term-level algorithms for function-free
//! Horn-clause programs (Datalog), as used by the reproduction of
//! *Optimizing Existential Datalog Queries* (Ramakrishnan, Beeri,
//! Krishnamurthy; PODS 1988).
//!
//! This crate provides:
//!
//! * interned [`Symbol`]s and first-order [`Value`]s / [`Term`]s;
//! * *existential adornments* ([`Adornment`], strings over `n`/`d` — the
//!   paper's "needed" / "don't-care" annotations, §2 of the paper);
//! * [`Atom`], [`Rule`], [`Program`] with safety (range-restriction)
//!   validation, predicate dependency graphs and SCC-based recursion
//!   analysis;
//! * a hand-written lexer/parser for a small Datalog text format
//!   ([`parse_program`]), including adornment syntax (`p[nd]` or `p^nd`),
//!   wildcards and `?-` queries, plus round-tripping pretty printers;
//! * substitutions, matching and unification for the function-free case,
//!   and Sagiv-style *freezing* of rules into ground instances
//!   ([`subst::freeze_rule`]).
//!
//! The AST is deliberately small and value-oriented: every optimizer phase in
//! the companion crates is an ordinary `Program -> Program` function, and
//! adorned predicates are ordinary predicates whose [`PredRef`] carries the
//! adornment.

pub mod adornment;
pub mod atom;
pub mod intern;
pub mod parser;
pub mod pred;
pub mod program;
// (pretty-printing lives in `Display` impls next to each type)
pub mod rule;
pub mod subst;
pub mod term;

pub use adornment::{Ad, Adornment};
pub use atom::Atom;
pub use intern::Symbol;
pub use parser::{parse_atom, parse_program, parse_rule, ParseError, ParsedProgram};
pub use pred::PredRef;
pub use program::{Program, Query};
pub use rule::Rule;
pub use subst::{freeze_rule, unify_atoms, FrozenRule, Subst};
pub use term::{Term, Value, Var};

/// Errors raised by structural validation of programs and rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstError {
    /// A head variable does not occur in the body (violates range
    /// restriction / safety).
    UnsafeRule {
        /// Rendered rule text.
        rule: String,
        /// The offending variable.
        var: String,
    },
    /// The same predicate is used with two different arities.
    ArityMismatch {
        pred: String,
        expected: usize,
        found: usize,
    },
    /// A predicate's adornment length disagrees with its argument count.
    ///
    /// Note that after projection (§3.2 of the paper) the adornment is
    /// *longer* than the argument list: the `d` positions have been dropped.
    /// In that case the argument count must equal the number of `n`s.
    AdornmentMismatch {
        pred: String,
        adornment: String,
        args: usize,
    },
    /// A wildcard (`_`) occurred in a rule head, which would make the rule
    /// unsafe.
    WildcardInHead { rule: String },
    /// The program has no query but an operation required one.
    NoQuery,
    /// The query references a predicate that does not exist in the program.
    UnknownQueryPredicate { pred: String },
}

impl std::fmt::Display for AstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AstError::UnsafeRule { rule, var } => {
                write!(
                    f,
                    "unsafe rule (head variable {var} not bound in body): {rule}"
                )
            }
            AstError::ArityMismatch {
                pred,
                expected,
                found,
            } => {
                write!(
                    f,
                    "predicate {pred} used with arity {found}, expected {expected}"
                )
            }
            AstError::AdornmentMismatch {
                pred,
                adornment,
                args,
            } => write!(
                f,
                "adornment {adornment} of {pred} incompatible with {args} argument(s)"
            ),
            AstError::NoQuery => write!(f, "program has no query"),
            AstError::WildcardInHead { rule } => {
                write!(f, "wildcard in rule head: {rule}")
            }
            AstError::UnknownQueryPredicate { pred } => {
                write!(
                    f,
                    "query predicate {pred} is not defined or used in the program"
                )
            }
        }
    }
}

impl std::error::Error for AstError {}

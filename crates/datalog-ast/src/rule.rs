//! Rules: a head atom, a positive conjunctive body, and (optionally)
//! negated body literals.
//!
//! Pure Datalog — the paper's setting — uses positive bodies only; the
//! `negative` literals implement the *stratified negation* extension the
//! paper lists as future work (§6). All of the paper's optimization
//! machinery operates on the positive `body`; negation-aware components
//! handle `negative` explicitly, and the deletion phases are conservatively
//! disabled for programs with negation (their equivalence theory is given
//! for Horn programs).

use crate::atom::Atom;
use crate::term::Var;
use crate::AstError;

/// A rule `h :- b1, ..., bn, not c1, ..., not cm.`
///
/// A rule with an empty body is a fact schema (we normally keep facts in
/// the EDB instead, per the paper's §1.1 convention that the IDB contains
/// no facts).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Positive body literals.
    pub body: Vec<Atom>,
    /// Negated body literals (`not c(...)`). Empty in pure Datalog.
    pub negative: Vec<Atom>,
}

impl Rule {
    /// A positive (pure-Datalog) rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule {
            head,
            body,
            negative: Vec::new(),
        }
    }

    /// A rule with negated literals.
    pub fn with_negation(head: Atom, body: Vec<Atom>, negative: Vec<Atom>) -> Rule {
        Rule {
            head,
            body,
            negative,
        }
    }

    /// Whether the rule uses negation.
    pub fn has_negation(&self) -> bool {
        !self.negative.is_empty()
    }

    /// A *unit rule* in the sense of §5 of the paper: exactly one positive
    /// body literal, no negation, and every head argument is a variable
    /// drawn from that literal.
    pub fn is_unit(&self) -> bool {
        if self.body.len() != 1 || !self.negative.is_empty() {
            return false;
        }
        let body_vars = self.body[0].vars();
        self.head
            .terms
            .iter()
            .all(|t| t.as_var().is_some_and(|v| body_vars.contains(&v)))
    }

    /// Distinct variables of the whole rule in first-occurrence order
    /// (head first, then positive body, then negated literals).
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        for v in self
            .head
            .var_occurrences()
            .chain(self.body.iter().flat_map(|a| a.var_occurrences()))
            .chain(self.negative.iter().flat_map(|a| a.var_occurrences()))
        {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Distinct positive-body variables in first-occurrence order.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        for v in self.body.iter().flat_map(|a| a.var_occurrences()) {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Check range restriction (safety): every head variable and every
    /// variable of a negated literal must occur in the positive body.
    pub fn check_safe(&self) -> Result<(), AstError> {
        let body_vars = self.body_vars();
        for v in self.head.var_occurrences() {
            if !body_vars.contains(&v) {
                return Err(AstError::UnsafeRule {
                    rule: self.to_string(),
                    var: v.name(),
                });
            }
        }
        for v in self.negative.iter().flat_map(|a| a.var_occurrences()) {
            if !body_vars.contains(&v) {
                return Err(AstError::UnsafeRule {
                    rule: self.to_string(),
                    var: v.name(),
                });
            }
        }
        Ok(())
    }

    /// Number of occurrences of `v` across the whole rule.
    pub fn occurrence_count(&self, v: Var) -> usize {
        self.head
            .var_occurrences()
            .chain(self.body.iter().flat_map(|a| a.var_occurrences()))
            .chain(self.negative.iter().flat_map(|a| a.var_occurrences()))
            .filter(|w| *w == v)
            .count()
    }

    /// Whether the head predicate also occurs in the (positive or negative)
    /// body. Indirect recursion is detected at the program level via SCCs
    /// ([`crate::program::Program::recursive_preds`]).
    pub fn is_directly_recursive(&self) -> bool {
        self.body
            .iter()
            .chain(self.negative.iter())
            .any(|a| a.pred == self.head.pred)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() || !self.negative.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for a in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{a}")?;
            }
            for a in &self.negative {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {a}")?;
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredRef;
    use crate::term::Term;

    fn tc_rule() -> Rule {
        // a(X,Y) :- p(X,Z), a(Z,Y).
        Rule::new(
            Atom::app("a", &["X", "Y"]),
            vec![Atom::app("p", &["X", "Z"]), Atom::app("a", &["Z", "Y"])],
        )
    }

    #[test]
    fn display_roundtrip_shape() {
        assert_eq!(tc_rule().to_string(), "a(X, Y) :- p(X, Z), a(Z, Y).");
    }

    #[test]
    fn safety() {
        assert!(tc_rule().check_safe().is_ok());
        let unsafe_rule = Rule::new(Atom::app("a", &["X", "Y"]), vec![Atom::app("p", &["X"])]);
        let err = unsafe_rule.check_safe().unwrap_err();
        assert!(matches!(err, AstError::UnsafeRule { .. }));
    }

    #[test]
    fn unit_rule_detection() {
        // q(X) :- p(X, Y) is a unit rule.
        let u = Rule::new(Atom::app("q", &["X"]), vec![Atom::app("p", &["X", "Y"])]);
        assert!(u.is_unit());
        // Two body literals: not unit.
        assert!(!tc_rule().is_unit());
        // Head constant: not unit by our definition (heads of generated unit
        // rules are always pure-variable).
        let c = Rule::new(
            Atom::new(PredRef::new("q"), vec![Term::int(1)]),
            vec![Atom::app("p", &["X"])],
        );
        assert!(!c.is_unit());
        // Negation disqualifies.
        let n = Rule::with_negation(
            Atom::app("q", &["X"]),
            vec![Atom::app("p", &["X", "Y"])],
            vec![Atom::app("r", &["X"])],
        );
        assert!(!n.is_unit());
    }

    #[test]
    fn recursion_and_vars() {
        let r = tc_rule();
        assert!(r.is_directly_recursive());
        assert_eq!(r.vars(), vec![Var::new("X"), Var::new("Y"), Var::new("Z")]);
        assert_eq!(r.occurrence_count(Var::new("Z")), 2);
        assert_eq!(r.occurrence_count(Var::new("X")), 2);
    }

    #[test]
    fn negation_display_and_safety() {
        let r = Rule::with_negation(
            Atom::app("alive", &["X"]),
            vec![Atom::app("node", &["X"])],
            vec![Atom::app("dead", &["X"])],
        );
        assert_eq!(r.to_string(), "alive(X) :- node(X), not dead(X).");
        assert!(r.check_safe().is_ok());
        assert!(r.has_negation());
        // A negated variable not bound positively is unsafe.
        let bad = Rule::with_negation(
            Atom::app("q", &["X"]),
            vec![Atom::app("p", &["X"])],
            vec![Atom::app("r", &["Y"])],
        );
        assert!(bad.check_safe().is_err());
    }

    #[test]
    fn negative_recursion_detected() {
        let r = Rule::with_negation(
            Atom::app("q", &["X"]),
            vec![Atom::app("p", &["X"])],
            vec![Atom::app("q", &["X"])],
        );
        assert!(r.is_directly_recursive());
    }
}

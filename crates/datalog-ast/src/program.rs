//! Programs: rule sets with a query, and their static structure.
//!
//! Following the paper's §1.1, a *program* is a triple `(Q, IDB, EDB)`:
//! the IDB is the finite rule set, the EDB holds all facts (the IDB contains
//! none), and `Q` is a query atom. This module carries only the `(Q, IDB)`
//! part; fact storage lives in `datalog-engine`.

use std::collections::{BTreeMap, BTreeSet};

use crate::atom::Atom;
use crate::pred::PredRef;
use crate::rule::Rule;
use crate::AstError;

/// The query: an atom whose constants act as selections and whose variables
/// are the requested output columns. Wildcard variables in the query are how
/// the text format expresses existential output positions before adornment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The query atom.
    pub atom: Atom,
}

impl Query {
    /// Construct from an atom.
    pub fn new(atom: Atom) -> Query {
        Query { atom }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "?- {}.", self.atom)
    }
}

/// A Datalog program: an IDB (rules) plus an optional query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The rules, in source order. Rule indices are stable and are used by
    /// the optimizers to report which rule was deleted/rewritten.
    pub rules: Vec<Rule>,
    /// The query, if any.
    pub query: Option<Query>,
}

impl Program {
    /// A program from rules, no query.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules, query: None }
    }

    /// A program from rules and a query.
    pub fn with_query(rules: Vec<Rule>, query: Query) -> Program {
        Program {
            rules,
            query: Some(query),
        }
    }

    /// The set of predicates defined by some rule head (derived / IDB
    /// predicates).
    pub fn idb_preds(&self) -> BTreeSet<PredRef> {
        self.rules.iter().map(|r| r.head.pred.clone()).collect()
    }

    /// The set of predicates that occur only in rule bodies (base / EDB
    /// predicates).
    pub fn edb_preds(&self) -> BTreeSet<PredRef> {
        let idb = self.idb_preds();
        let mut edb = BTreeSet::new();
        for r in &self.rules {
            for a in r.body.iter().chain(r.negative.iter()) {
                if !idb.contains(&a.pred) {
                    edb.insert(a.pred.clone());
                }
            }
        }
        if let Some(q) = &self.query {
            if !idb.contains(&q.atom.pred) {
                edb.insert(q.atom.pred.clone());
            }
        }
        edb
    }

    /// All predicates mentioned anywhere (heads, bodies, query).
    pub fn all_preds(&self) -> BTreeSet<PredRef> {
        let mut s = BTreeSet::new();
        for r in &self.rules {
            s.insert(r.head.pred.clone());
            for a in r.body.iter().chain(r.negative.iter()) {
                s.insert(a.pred.clone());
            }
        }
        if let Some(q) = &self.query {
            s.insert(q.atom.pred.clone());
        }
        s
    }

    /// Arity of every predicate, determined from its occurrences.
    ///
    /// Returns an error if a predicate occurs with two different arities, or
    /// if an adorned predicate's argument count matches neither its
    /// adornment length (pre-projection form) nor its needed count
    /// (post-projection form).
    pub fn arities(&self) -> Result<BTreeMap<PredRef, usize>, AstError> {
        let mut map: BTreeMap<PredRef, usize> = BTreeMap::new();
        let mut visit = |atom: &Atom| -> Result<(), AstError> {
            match map.get(&atom.pred) {
                None => {
                    if let Some(ad) = &atom.pred.adornment {
                        let k = atom.arity();
                        if k != ad.len() && k != ad.needed_count() {
                            return Err(AstError::AdornmentMismatch {
                                pred: atom.pred.name.as_str(),
                                adornment: ad.to_string(),
                                args: k,
                            });
                        }
                    }
                    map.insert(atom.pred.clone(), atom.arity());
                }
                Some(&k) if k != atom.arity() => {
                    return Err(AstError::ArityMismatch {
                        pred: atom.pred.to_string(),
                        expected: k,
                        found: atom.arity(),
                    });
                }
                Some(_) => {}
            }
            Ok(())
        };
        for r in &self.rules {
            visit(&r.head)?;
            for a in r.body.iter().chain(r.negative.iter()) {
                visit(a)?;
            }
        }
        if let Some(q) = &self.query {
            visit(&q.atom)?;
        }
        Ok(map)
    }

    /// Validate the whole program: consistent arities, safe rules, no
    /// wildcard head variables, and (if a query is present) a known query
    /// predicate.
    pub fn validate(&self) -> Result<(), AstError> {
        self.arities()?;
        for r in &self.rules {
            r.check_safe()?;
            if r.head.var_occurrences().any(|v| v.is_wildcard()) {
                return Err(AstError::WildcardInHead {
                    rule: r.to_string(),
                });
            }
        }
        if let Some(q) = &self.query {
            if !self.all_preds().contains(&q.atom.pred) {
                return Err(AstError::UnknownQueryPredicate {
                    pred: q.atom.pred.to_string(),
                });
            }
        }
        Ok(())
    }

    /// The predicate dependency graph: `p` depends on `q` when some rule
    /// with head `p` has `q` in its body. Returned as an adjacency map over
    /// the IDB predicates (EDB predicates are sinks and omitted as keys).
    pub fn dependency_graph(&self) -> BTreeMap<PredRef, BTreeSet<PredRef>> {
        let mut g: BTreeMap<PredRef, BTreeSet<PredRef>> = BTreeMap::new();
        for r in &self.rules {
            let entry = g.entry(r.head.pred.clone()).or_default();
            for a in r.body.iter().chain(r.negative.iter()) {
                entry.insert(a.pred.clone());
            }
        }
        g
    }

    /// Strongly connected components of the dependency graph (Tarjan),
    /// restricted to IDB predicates, in reverse topological order (callees
    /// before callers).
    pub fn sccs(&self) -> Vec<Vec<PredRef>> {
        let g = self.dependency_graph();
        let idb = self.idb_preds();
        let nodes: Vec<PredRef> = idb.iter().cloned().collect();
        let index_of: BTreeMap<&PredRef, usize> =
            nodes.iter().enumerate().map(|(i, p)| (p, i)).collect();
        let succs: Vec<Vec<usize>> = nodes
            .iter()
            .map(|p| {
                g.get(p)
                    .map(|deps| {
                        deps.iter()
                            .filter_map(|d| index_of.get(d).copied())
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();

        // Iterative Tarjan.
        struct State {
            index: Vec<Option<usize>>,
            lowlink: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next_index: usize,
            comps: Vec<Vec<usize>>,
        }
        let n = nodes.len();
        let mut st = State {
            index: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            comps: Vec::new(),
        };
        for start in 0..n {
            if st.index[start].is_some() {
                continue;
            }
            // Explicit DFS stack: (node, next-successor-position).
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            st.index[start] = Some(st.next_index);
            st.lowlink[start] = st.next_index;
            st.next_index += 1;
            st.stack.push(start);
            st.on_stack[start] = true;
            while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
                if *pos < succs[v].len() {
                    let w = succs[v][*pos];
                    *pos += 1;
                    if st.index[w].is_none() {
                        st.index[w] = Some(st.next_index);
                        st.lowlink[w] = st.next_index;
                        st.next_index += 1;
                        st.stack.push(w);
                        st.on_stack[w] = true;
                        dfs.push((w, 0));
                    } else if st.on_stack[w] {
                        st.lowlink[v] = st.lowlink[v].min(st.index[w].unwrap());
                    }
                } else {
                    dfs.pop();
                    if let Some(&(parent, _)) = dfs.last() {
                        st.lowlink[parent] = st.lowlink[parent].min(st.lowlink[v]);
                    }
                    if st.lowlink[v] == st.index[v].unwrap() {
                        let mut comp = Vec::new();
                        loop {
                            let w = st.stack.pop().expect("tarjan stack underflow");
                            st.on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        st.comps.push(comp);
                    }
                }
            }
        }
        st.comps
            .into_iter()
            .map(|c| c.into_iter().map(|i| nodes[i].clone()).collect())
            .collect()
    }

    /// Predicates that participate in recursion: members of an SCC of size
    /// ≥ 2, or self-looping predicates.
    pub fn recursive_preds(&self) -> BTreeSet<PredRef> {
        let g = self.dependency_graph();
        let mut rec = BTreeSet::new();
        for comp in self.sccs() {
            if comp.len() > 1 {
                rec.extend(comp);
            } else {
                let p = &comp[0];
                if g.get(p).is_some_and(|deps| deps.contains(p)) {
                    rec.insert(p.clone());
                }
            }
        }
        rec
    }

    /// Whether the program contains any recursion.
    pub fn is_recursive(&self) -> bool {
        !self.recursive_preds().is_empty()
    }

    /// Whether any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(|r| r.has_negation())
    }

    /// Predicates reachable from the query predicate in the dependency
    /// graph (including the query predicate itself). Returns all predicates
    /// if the program has no query.
    pub fn reachable_from_query(&self) -> BTreeSet<PredRef> {
        let Some(q) = &self.query else {
            return self.all_preds();
        };
        let g = self.dependency_graph();
        let mut seen = BTreeSet::new();
        let mut work = vec![q.atom.pred.clone()];
        while let Some(p) = work.pop() {
            if !seen.insert(p.clone()) {
                continue;
            }
            if let Some(deps) = g.get(&p) {
                for d in deps {
                    if !seen.contains(d) {
                        work.push(d.clone());
                    }
                }
            }
        }
        seen
    }

    /// Indices of rules whose head predicate is `p`.
    pub fn rules_for(&self, p: &PredRef) -> Vec<usize> {
        self.rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (r.head.pred == *p).then_some(i))
            .collect()
    }

    /// A copy of the program without the rule at `idx`.
    pub fn without_rule(&self, idx: usize) -> Program {
        let mut p = self.clone();
        p.rules.remove(idx);
        p
    }

    /// Render as parseable program text (one rule per line, query last).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.rules {
            let _ = writeln!(out, "{r}");
        }
        if let Some(q) = &self.query {
            let _ = writeln!(out, "{q}");
        }
        out
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn tc() -> Program {
        parse_program(
            "query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
        )
        .unwrap()
        .program
    }

    #[test]
    fn idb_edb_split() {
        let p = tc();
        let idb: Vec<String> = p.idb_preds().iter().map(|p| p.to_string()).collect();
        let edb: Vec<String> = p.edb_preds().iter().map(|p| p.to_string()).collect();
        assert_eq!(idb, vec!["a", "query"]);
        assert_eq!(edb, vec!["p"]);
    }

    #[test]
    fn arity_inference_and_mismatch() {
        let p = tc();
        let ar = p.arities().unwrap();
        assert_eq!(ar[&PredRef::new("a")], 2);
        assert_eq!(ar[&PredRef::new("query")], 1);

        let bad = parse_program("a(X) :- p(X, Y).\na(X, Y) :- p(X, Y).").unwrap();
        assert!(matches!(
            bad.program.arities(),
            Err(AstError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn recursion_detection() {
        let p = tc();
        let rec = p.recursive_preds();
        assert!(rec.contains(&PredRef::new("a")));
        assert!(!rec.contains(&PredRef::new("query")));
        assert!(p.is_recursive());

        let nonrec = parse_program("q(X) :- p(X, Y).").unwrap().program;
        assert!(!nonrec.is_recursive());
    }

    #[test]
    fn mutual_recursion_via_scc() {
        let p = parse_program(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).",
        )
        .unwrap()
        .program;
        let rec = p.recursive_preds();
        assert!(rec.contains(&PredRef::new("even")));
        assert!(rec.contains(&PredRef::new("odd")));
        // SCCs come callees-first; the even/odd component exists with 2 members.
        let sccs = p.sccs();
        assert!(sccs.iter().any(|c| c.len() == 2));
    }

    #[test]
    fn reachability_from_query() {
        let p = parse_program(
            "q(X) :- a(X).\n\
             a(X) :- e(X, Y).\n\
             orphan(X) :- e(X, X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let reach = p.reachable_from_query();
        assert!(reach.contains(&PredRef::new("q")));
        assert!(reach.contains(&PredRef::new("a")));
        assert!(reach.contains(&PredRef::new("e")));
        assert!(!reach.contains(&PredRef::new("orphan")));
    }

    #[test]
    fn text_roundtrip() {
        let p = tc();
        let reparsed = parse_program(&p.to_text()).unwrap().program;
        assert_eq!(p, reparsed);
    }

    #[test]
    fn without_rule_removes_by_index() {
        let p = tc();
        let q = p.without_rule(1);
        assert_eq!(q.rules.len(), 2);
        assert!(!q.rules.iter().any(|r| r.is_directly_recursive()));
    }
}

//! Global string interning.
//!
//! Symbols are process-global: two [`Symbol`]s are equal iff their underlying
//! strings are equal, regardless of which program or database they came from.
//! This keeps every AST node and engine tuple `Copy`-cheap and makes hashing
//! a single `u32` hash. The table only grows; for a query optimizer working
//! over programs with a few hundred identifiers this is the right trade.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, hash and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its symbol.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read().expect("interner poisoned");
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let id = guard.strings.len() as u32;
        guard.strings.push(s.to_owned());
        guard.map.insert(s.to_owned(), id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(&self) -> String {
        interner().read().expect("interner poisoned").strings[self.0 as usize].clone()
    }

    /// Raw id; stable within a process run. Useful for dense tables.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

/// Generate a fresh symbol with the given prefix that is guaranteed not to
/// collide with any symbol interned so far.
///
/// Used for Sagiv-style freezing (skolem constants), fresh variables for
/// wildcards, and generated predicate names (`B1`, `B2`, ... in §3.1 of the
/// paper).
pub fn fresh_symbol(prefix: &str) -> Symbol {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let candidate = format!("{prefix}{n}");
        let already = {
            let guard = interner().read().expect("interner poisoned");
            guard.map.contains_key(&candidate)
        };
        if !already {
            return Symbol::intern(&candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn display_matches_str() {
        let a = Symbol::intern("pred_name");
        assert_eq!(format!("{a}"), "pred_name");
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = fresh_symbol("$t");
        let b = fresh_symbol("$t");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("$t"));
    }

    #[test]
    fn fresh_symbol_avoids_existing() {
        // Pre-intern a name the counter would produce; fresh_symbol must skip it.
        let pre = Symbol::intern("$skip0");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let s = fresh_symbol("$skip");
            assert_ne!(s, pre);
            assert!(seen.insert(s), "fresh symbol repeated");
        }
    }
}

//! Lexer and recursive-descent parser for the Datalog text format.
//!
//! Grammar (whitespace and `%`-to-end-of-line comments are skipped):
//!
//! ```text
//! program    := statement*
//! statement  := rule | fact | query
//! rule       := atom ":-" literal ("," literal)* "."
//! literal    := ["not"] atom
//! fact       := ground-atom "."
//! query      := "?-" atom "."
//! atom       := pred [ "(" term ("," term)* ")" ]
//! pred       := ident adornment?
//! adornment  := "[" [nd]* "]"   |   "^" [nd]+
//! term       := VARIABLE | INTEGER | ident | "_" | "\"" chars "\""
//! ```
//!
//! * Identifiers starting with an upper-case letter (or `_` followed by a
//!   letter) are variables; `_` alone is a wildcard expanded to a fresh
//!   variable.
//! * `p[nd]` and the paper's `p^nd` both denote the adorned predicate.
//! * Facts (ground atoms used as statements) are collected separately into
//!   [`ParsedProgram::facts`]: per the paper's convention the IDB holds no
//!   facts.

use std::collections::BTreeMap;

use crate::adornment::Adornment;
use crate::atom::Atom;
use crate::pred::PredRef;
use crate::program::{Program, Query};
use crate::rule::Rule;
use crate::term::{Term, Value, Var};

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl ParseError {
    /// Render as a `origin:line:col: message` diagnostic, the conventional
    /// compiler-style form. `origin` is typically a file path; tools that
    /// parse protocol input use a pseudo-origin such as `"query"`. The
    /// rendering is click-through friendly for editors and is what `xdl`
    /// prints (and what `datalog-server` returns in-protocol as `ERR ...`).
    pub fn render_at(&self, origin: &str) -> String {
        format!("{origin}:{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing a source text: the rule/query program plus any facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedProgram {
    /// Rules and query.
    pub program: Program,
    /// Ground facts, grouped by predicate.
    pub facts: BTreeMap<PredRef, Vec<Vec<Value>>>,
    /// 1-based (line, col) of the first token of each rule statement,
    /// parallel to `program.rules`. Diagnostics tools (`datalog-lint`) use
    /// these to point at the offending statement.
    pub rule_spans: Vec<(usize, usize)>,
    /// 1-based (line, col) of the `?-` token of the query, if any.
    pub query_span: Option<(usize, usize)>,
    /// 1-based (line, col) of each fact statement, in source order.
    pub fact_spans: Vec<(PredRef, usize, usize)>,
}

impl ParsedProgram {
    /// Span of rule `idx`, falling back to `1:1` when unknown (e.g. for a
    /// program assembled in code rather than parsed from text).
    pub fn rule_span(&self, idx: usize) -> (usize, usize) {
        self.rule_spans.get(idx).copied().unwrap_or((1, 1))
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),   // lower-case identifier
    VarName(String), // upper-case identifier
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Caret,
    Comma,
    Dot,
    Implies,   // :-
    QueryLead, // ?-
    Underscore,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Tokenize the whole input, recording each token's position.
    fn tokenize(mut self) -> Result<Vec<(Tok, usize, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b'^' => {
                    self.bump();
                    Tok::Caret
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Implies
                    } else {
                        return Err(self.err("expected '-' after ':'"));
                    }
                }
                b'?' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::QueryLead
                    } else {
                        return Err(self.err("expected '-' after '?'"));
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(ch) => s.push(ch as char),
                            None => return Err(self.err("unterminated string literal")),
                        }
                    }
                    Tok::Str(s)
                }
                b'-' | b'0'..=b'9' => {
                    let mut s = String::new();
                    s.push(self.bump().unwrap() as char);
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            s.push(self.bump().unwrap() as char);
                        } else {
                            break;
                        }
                    }
                    let n: i64 = s
                        .parse()
                        .map_err(|_| self.err(format!("bad integer literal '{s}'")))?;
                    Tok::Int(n)
                }
                b'_' => {
                    self.bump();
                    // `_` alone is a wildcard; `_x`/`_X` is a named variable.
                    if self
                        .peek()
                        .is_some_and(|d| d.is_ascii_alphanumeric() || d == b'_')
                    {
                        let mut s = String::from("_");
                        while let Some(d) = self.peek() {
                            if d.is_ascii_alphanumeric() || d == b'_' {
                                s.push(self.bump().unwrap() as char);
                            } else {
                                break;
                            }
                        }
                        Tok::VarName(s)
                    } else {
                        Tok::Underscore
                    }
                }
                c if c.is_ascii_alphabetic() => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            s.push(self.bump().unwrap() as char);
                        } else {
                            break;
                        }
                    }
                    if s.as_bytes()[0].is_ascii_uppercase() {
                        Tok::VarName(s)
                    } else {
                        Tok::Ident(s)
                    }
                }
                other => return Err(self.err(format!("unexpected character '{}'", other as char))),
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|&(_, l, c)| (l, c))
            .or_else(|| self.toks.last().map(|&(_, l, c)| (l, c + 1)))
            .unwrap_or((1, 1));
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn parse_pred(&mut self) -> Result<PredRef, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => return Err(self.err_here("expected predicate name")),
        };
        let adornment = match self.peek() {
            Some(Tok::LBracket) => {
                self.bump();
                let ad = match self.peek() {
                    Some(Tok::RBracket) => Adornment(vec![]),
                    Some(Tok::Ident(s)) => {
                        let s = s.clone();
                        let ad = Adornment::parse(&s).ok_or_else(|| {
                            self.err_here(format!("bad adornment '{s}' (use only n/d)"))
                        })?;
                        self.bump();
                        ad
                    }
                    _ => return Err(self.err_here("expected adornment letters or ']'")),
                };
                self.expect(&Tok::RBracket, "']'")?;
                Some(ad)
            }
            Some(Tok::Caret) => {
                self.bump();
                match self.bump() {
                    Some(Tok::Ident(s)) => Some(Adornment::parse(&s).ok_or_else(|| {
                        self.err_here(format!("bad adornment '{s}' (use only n/d)"))
                    })?),
                    _ => return Err(self.err_here("expected adornment letters after '^'")),
                }
            }
            _ => None,
        };
        Ok(PredRef {
            name: crate::intern::Symbol::intern(&name),
            adornment,
        })
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::VarName(s)) => Ok(Term::Var(Var::new(&s))),
            Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Tok::Ident(s)) => Ok(Term::Const(Value::sym(&s))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::sym(&s))),
            Some(Tok::Underscore) => Ok(Term::Var(Var::fresh_wildcard())),
            _ => Err(self.err_here("expected term")),
        }
    }

    /// Parse a rule body: positive and negated literals in source order.
    fn parse_body(&mut self) -> Result<(Vec<Atom>, Vec<Atom>), ParseError> {
        let mut body = Vec::new();
        let mut negative = Vec::new();
        loop {
            // `not` is a keyword only in literal position; elsewhere it is
            // an ordinary identifier.
            let negated = matches!(self.peek(), Some(Tok::Ident(s)) if s == "not")
                && !matches!(
                    self.toks.get(self.pos + 1).map(|(t, _, _)| t),
                    Some(Tok::LParen)
                );
            if negated {
                self.bump();
                negative.push(self.parse_atom()?);
            } else {
                body.push(self.parse_atom()?);
            }
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok((body, negative))
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let pred = self.parse_pred()?;
        let mut terms = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    terms.push(self.parse_term()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "')'")?;
        }
        Ok(Atom { pred, terms })
    }

    /// Position of the token about to be consumed (start of a statement).
    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((1, 1))
    }

    fn parse_statement(&mut self, out: &mut ParsedProgram) -> Result<(), ParseError> {
        let span = self.here();
        if self.peek() == Some(&Tok::QueryLead) {
            self.bump();
            let atom = self.parse_atom()?;
            self.expect(&Tok::Dot, "'.'")?;
            if out.program.query.is_some() {
                return Err(self.err_here("multiple queries in program"));
            }
            out.program.query = Some(Query::new(atom));
            out.query_span = Some(span);
            return Ok(());
        }
        let head = self.parse_atom()?;
        match self.peek() {
            Some(Tok::Dot) => {
                self.bump();
                // A fact statement.
                match head.ground_values() {
                    Some(values) => {
                        out.fact_spans.push((head.pred.clone(), span.0, span.1));
                        out.facts.entry(head.pred).or_default().push(values);
                    }
                    None => {
                        return Err(self.err_here(format!(
                            "fact '{head}' is not ground (facts belong to the EDB)"
                        )))
                    }
                }
                Ok(())
            }
            Some(Tok::Implies) => {
                self.bump();
                let (body, negative) = self.parse_body()?;
                self.expect(&Tok::Dot, "'.'")?;
                out.program
                    .rules
                    .push(Rule::with_negation(head, body, negative));
                out.rule_spans.push(span);
                Ok(())
            }
            _ => Err(self.err_here("expected '.' or ':-'")),
        }
    }
}

/// Parse a full program text.
pub fn parse_program(src: &str) -> Result<ParsedProgram, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = ParsedProgram {
        program: Program::default(),
        facts: BTreeMap::new(),
        rule_spans: Vec::new(),
        query_span: None,
        fact_spans: Vec::new(),
    };
    while p.peek().is_some() {
        p.parse_statement(&mut out)?;
    }
    Ok(out)
}

/// Parse a single rule, e.g. `"a(X,Y) :- p(X,Z), a(Z,Y)."` (trailing dot
/// optional).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let head = p.parse_atom()?;
    p.expect(&Tok::Implies, "':-'")?;
    let (body, negative) = p.parse_body()?;
    if p.peek() == Some(&Tok::Dot) {
        p.bump();
    }
    if p.peek().is_some() {
        return Err(p.err_here("trailing input after rule"));
    }
    Ok(Rule::with_negation(head, body, negative))
}

/// Parse a single atom, e.g. `"p[nd](X, 3)"`.
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let a = p.parse_atom()?;
    if p.peek() == Some(&Tok::Dot) {
        p.bump();
    }
    if p.peek().is_some() {
        return Err(p.err_here("trailing input after atom"));
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adornment::Ad;

    #[test]
    fn parse_transitive_closure() {
        let p = parse_program(
            "% Example 1 of the paper\n\
             query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
        )
        .unwrap();
        assert_eq!(p.program.rules.len(), 3);
        assert!(p.program.query.is_some());
        assert!(p.facts.is_empty());
    }

    #[test]
    fn parse_adornments_both_syntaxes() {
        let a = parse_atom("a[nd](X, Y)").unwrap();
        let b = parse_atom("a^nd(X, Y)").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.pred.adornment.as_ref().unwrap().0, vec![Ad::N, Ad::D]);
        // Empty adornment (boolean predicate).
        let c = parse_atom("b2[]").unwrap();
        assert_eq!(c.pred.adornment.as_ref().unwrap().len(), 0);
        assert_eq!(c.arity(), 0);
    }

    #[test]
    fn parse_facts_and_values() {
        let p = parse_program(
            "p(1, 2).\n\
             p(2, 3).\n\
             name(alice, 1).\n\
             label(\"hello world\", 1).\n\
             q(X) :- p(X, Y).",
        )
        .unwrap();
        assert_eq!(p.facts[&PredRef::new("p")].len(), 2);
        assert_eq!(
            p.facts[&PredRef::new("name")][0],
            vec![Value::sym("alice"), Value::int(1)]
        );
        assert_eq!(
            p.facts[&PredRef::new("label")][0],
            vec![Value::sym("hello world"), Value::int(1)]
        );
        assert_eq!(p.program.rules.len(), 1);
    }

    #[test]
    fn wildcards_become_fresh_vars() {
        let r = parse_rule("q(X) :- p(X, _), p(_, X)").unwrap();
        let w1 = r.body[0].terms[1].as_var().unwrap();
        let w2 = r.body[1].terms[0].as_var().unwrap();
        assert!(w1.is_wildcard());
        assert!(w2.is_wildcard());
        assert_ne!(w1, w2, "each wildcard must be a distinct variable");
    }

    #[test]
    fn underscore_prefixed_names_are_variables() {
        let r = parse_rule("q(X) :- p(X, _tail), r(_tail)").unwrap();
        let v1 = r.body[0].terms[1].as_var().unwrap();
        let v2 = r.body[1].terms[0].as_var().unwrap();
        assert_eq!(v1, v2, "named _vars are shared, unlike bare wildcards");
    }

    #[test]
    fn error_positions() {
        let e = parse_program("q(X) :- p(X Y).").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.col > 1);

        let e = parse_program("q(X)\n:~ p(X).").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn render_at_is_file_line_col() {
        let e = parse_program("q(X) :-\n  p(X Y).").unwrap_err();
        let rendered = e.render_at("examples/bad.dl");
        assert_eq!(
            rendered,
            format!("examples/bad.dl:{}:{}: {}", e.line, e.col, e.message)
        );
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_nonground_fact() {
        let e = parse_program("p(X).").unwrap_err();
        assert!(e.message.contains("not ground"));
    }

    #[test]
    fn rejects_multiple_queries() {
        let e = parse_program("?- q(X).\n?- r(X).").unwrap_err();
        assert!(e.message.contains("multiple queries"));
    }

    #[test]
    fn rejects_bad_adornment() {
        let e = parse_atom("p[nx](X, Y)").unwrap_err();
        assert!(e.message.contains("bad adornment"));
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("p(-5, 3).").unwrap();
        assert_eq!(
            p.facts[&PredRef::new("p")][0],
            vec![Value::int(-5), Value::int(3)]
        );
    }

    #[test]
    fn display_parse_roundtrip_with_adornments() {
        let src = "a[nd](X) :- p(X, Z), a[nd](Z).";
        let r = parse_rule(src).unwrap();
        let printed = r.to_string();
        let reparsed = parse_rule(&printed).unwrap();
        assert_eq!(r, reparsed);
    }

    #[test]
    fn lexer_failure_injection() {
        for (src, needle) in [
            ("p(\"abc).", "unterminated string"),
            ("p[n](X) :- q(X) r(X).", "expected"),
            ("p^ (X).", "adornment"),
            ("p[zz](X).", "bad adornment"),
            ("p(X,).", "expected term"),
            ("p(X", "expected"),
            ("@p(X).", "unexpected character"),
            ("?~ q(X).", "expected '-' after '?'"),
        ] {
            let e = parse_program(src).unwrap_err();
            assert!(
                e.message.contains(needle),
                "for {src:?}: got '{}', wanted '{needle}'",
                e.message
            );
        }
    }

    #[test]
    fn negation_parses() {
        let r = parse_rule("alive(X) :- node(X), not dead(X)").unwrap();
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.negative.len(), 1);
        assert_eq!(r.to_string(), "alive(X) :- node(X), not dead(X).");
        // Round-trip.
        let again = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, again);
        // `not` as a predicate name still works when applied.
        let r2 = parse_rule("q(X) :- not(X, Y)").unwrap();
        assert!(r2.negative.is_empty());
        assert_eq!(r2.body[0].pred.name.as_str(), "not");
    }

    #[test]
    fn statement_spans_recorded() {
        let p = parse_program("p(1, 2).\nq(X) :- p(X, Y).\n\n% comment\n  r(X) :- q(X).\n?- r(X).")
            .unwrap();
        assert_eq!(p.rule_spans, vec![(2, 1), (5, 3)]);
        assert_eq!(p.rule_span(0), (2, 1));
        assert_eq!(p.rule_span(99), (1, 1));
        assert_eq!(p.query_span, Some((6, 1)));
        assert_eq!(p.fact_spans, vec![(PredRef::new("p"), 1, 1)]);
    }

    #[test]
    fn boolean_rules_parse() {
        // §3.1 style boolean predicates with no arguments.
        let p = parse_program("b2 :- q3[dn](V), q4[n](V).").unwrap();
        assert_eq!(p.program.rules[0].head.arity(), 0);
    }
}

//! Substitutions, matching, unification, and Sagiv-style freezing.
//!
//! Function-free Datalog keeps all of this simple: a substitution maps
//! variables to terms, and unification never needs an occurs check.

use std::collections::BTreeMap;

use crate::atom::Atom;
use crate::rule::Rule;
use crate::term::{Term, Value, Var};

/// A substitution: a finite map from variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Look up a variable, following chains of variable-to-variable
    /// bindings to the representative term.
    pub fn resolve(&self, t: Term) -> Term {
        let mut cur = t;
        // Bounded walk: chains cannot cycle because `bind` unions toward
        // the representative, but guard anyway.
        for _ in 0..=self.map.len() {
            match cur {
                Term::Var(v) => match self.map.get(&v) {
                    Some(&next) => cur = next,
                    None => return cur,
                },
                Term::Const(_) => return cur,
            }
        }
        cur
    }

    /// Bind `v` to `t` (resolving both sides first). Returns `false` if the
    /// binding conflicts with an existing one.
    pub fn bind(&mut self, v: Var, t: Term) -> bool {
        let lhs = self.resolve(Term::Var(v));
        let rhs = self.resolve(t);
        match (lhs, rhs) {
            (Term::Var(a), Term::Var(b)) if a == b => true,
            (Term::Var(a), rhs) => {
                self.map.insert(a, rhs);
                true
            }
            (Term::Const(a), Term::Const(b)) => a == b,
            (Term::Const(_), Term::Var(b)) => {
                self.map.insert(b, lhs);
                true
            }
        }
    }

    /// Direct lookup without chain resolution (mostly for tests).
    pub fn get(&self, v: Var) -> Option<Term> {
        self.map.get(&v).copied()
    }

    /// Apply to a term.
    pub fn apply_term(&self, t: Term) -> Term {
        self.resolve(t)
    }

    /// Apply to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred.clone(),
            terms: a.terms.iter().map(|t| self.apply_term(*t)).collect(),
        }
    }

    /// Apply to a rule.
    pub fn apply_rule(&self, r: &Rule) -> Rule {
        Rule {
            head: self.apply_atom(&r.head),
            body: r.body.iter().map(|a| self.apply_atom(a)).collect(),
            negative: r.negative.iter().map(|a| self.apply_atom(a)).collect(),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Unify two atoms (same predicate, same arity required), extending `s`.
/// Returns `None` on clash, leaving `s` in an unspecified state — callers
/// should clone before speculative unification.
pub fn unify_atoms_into(a: &Atom, b: &Atom, s: &mut Subst) -> Option<()> {
    if a.pred != b.pred || a.arity() != b.arity() {
        return None;
    }
    for (ta, tb) in a.terms.iter().zip(b.terms.iter()) {
        let ta = s.resolve(*ta);
        let tb = s.resolve(*tb);
        match (ta, tb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if !s.bind(v, t) {
                    return None;
                }
            }
        }
    }
    Some(())
}

/// Unify two atoms from scratch, returning the most general unifier.
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    let mut s = Subst::new();
    unify_atoms_into(a, b, &mut s).map(|_| s)
}

/// Match `pattern` against a ground atom `fact` (one-way unification),
/// extending `s`. The pattern's constants must equal the fact's values.
pub fn match_atom(pattern: &Atom, fact: &Atom, s: &mut Subst) -> bool {
    debug_assert!(fact.is_ground());
    if pattern.pred != fact.pred || pattern.arity() != fact.arity() {
        return false;
    }
    for (pt, ft) in pattern.terms.iter().zip(fact.terms.iter()) {
        let value = ft.as_const().expect("fact must be ground");
        match s.resolve(*pt) {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if !s.bind(v, Term::Const(value)) {
                    return false;
                }
            }
        }
    }
    true
}

/// A frozen (ground) instance of a rule: the body facts form an input DB
/// and the head fact is the expected derivation. This is the construction
/// at the core of Sagiv's uniform-equivalence test (Example 4 of the paper)
/// and of the paper's uniform *query* equivalence test (Example 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenRule {
    /// Ground (positive) body facts — the input DB for the test. May
    /// mention IDB predicates — that is the whole point of *uniform*
    /// equivalence. Negated literals are not represented (the freeze tests
    /// are only applied to pure Datalog programs).
    pub body_facts: Vec<Atom>,
    /// The ground head fact that must be (re-)derivable.
    pub head_fact: Atom,
    /// The variable-to-skolem mapping used.
    pub assignment: BTreeMap<Var, Value>,
}

/// Freeze a rule by mapping each distinct variable to a fresh skolem
/// constant.
pub fn freeze_rule(r: &Rule) -> FrozenRule {
    let mut assignment = BTreeMap::new();
    for v in r.vars() {
        assignment.insert(v, Value::fresh_skolem());
    }
    let mut s = Subst::new();
    for (v, c) in &assignment {
        let ok = s.bind(*v, Term::Const(*c));
        debug_assert!(ok);
    }
    let g = s.apply_rule(r);
    debug_assert!(g.head.is_ground());
    FrozenRule {
        body_facts: g.body,
        head_fact: g.head,
        assignment,
    }
}

/// Rename every variable of a rule to a fresh variable (standardizing
/// apart), returning the renamed rule.
pub fn rename_apart(r: &Rule) -> Rule {
    let mut s = Subst::new();
    for v in r.vars() {
        let ok = s.bind(v, Term::Var(Var::fresh()));
        debug_assert!(ok);
    }
    s.apply_rule(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredRef;

    #[test]
    fn bind_and_resolve() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::var("Y")));
        assert!(s.bind(Var::new("Y"), Term::int(3)));
        assert_eq!(s.resolve(Term::var("X")), Term::int(3));
        // Conflicting constant binding fails.
        assert!(!s.bind(Var::new("X"), Term::int(4)));
        // Rebinding to the same constant is fine.
        assert!(s.bind(Var::new("X"), Term::int(3)));
    }

    #[test]
    fn unify_basic() {
        let a = Atom::app("p", &["X", "Y"]);
        let b = Atom::new(PredRef::new("p"), vec![Term::int(1), Term::var("Z")]);
        let s = unify_atoms(&a, &b).unwrap();
        assert_eq!(s.resolve(Term::var("X")), Term::int(1));
        // Y and Z are aliased.
        let y = s.resolve(Term::var("Y"));
        let z = s.resolve(Term::var("Z"));
        assert_eq!(y, z);
    }

    #[test]
    fn unify_clash_and_pred_mismatch() {
        let a = Atom::new(PredRef::new("p"), vec![Term::int(1)]);
        let b = Atom::new(PredRef::new("p"), vec![Term::int(2)]);
        assert!(unify_atoms(&a, &b).is_none());
        let c = Atom::new(PredRef::new("q"), vec![Term::int(1)]);
        assert!(unify_atoms(&a, &c).is_none());
        // Same name, different adornment: different predicates.
        let d = Atom::new(PredRef::adorned("p", "n"), vec![Term::int(1)]);
        assert!(unify_atoms(&a, &d).is_none());
    }

    #[test]
    fn unify_repeated_vars() {
        // p(X, X) against p(1, 2) must fail; against p(1, 1) must succeed.
        let pat = Atom::app("p", &["X", "X"]);
        let bad = Atom::fact(PredRef::new("p"), vec![Value::int(1), Value::int(2)]);
        let good = Atom::fact(PredRef::new("p"), vec![Value::int(1), Value::int(1)]);
        assert!(unify_atoms(&pat, &bad).is_none());
        assert!(unify_atoms(&pat, &good).is_some());
    }

    #[test]
    fn match_is_one_way() {
        let pat = Atom::app("p", &["X", "Y"]);
        let fact = Atom::fact(PredRef::new("p"), vec![Value::int(1), Value::int(2)]);
        let mut s = Subst::new();
        assert!(match_atom(&pat, &fact, &mut s));
        assert_eq!(s.resolve(Term::var("X")), Term::int(1));
        assert_eq!(s.resolve(Term::var("Y")), Term::int(2));
    }

    #[test]
    fn freeze_produces_ground_instance() {
        let r = Rule::new(
            Atom::app("a", &["X", "Y"]),
            vec![Atom::app("p", &["X", "Z"]), Atom::app("a", &["Z", "Y"])],
        );
        let f = freeze_rule(&r);
        assert!(f.head_fact.is_ground());
        assert!(f.body_facts.iter().all(|a| a.is_ground()));
        assert_eq!(f.assignment.len(), 3);
        // Distinct variables get distinct skolems.
        let mut vals: Vec<_> = f.assignment.values().collect();
        vals.dedup();
        assert_eq!(vals.len(), 3);
        // Shared variable Z links p and the recursive a.
        let z = f.assignment[&Var::new("Z")];
        assert_eq!(f.body_facts[0].terms[1], Term::Const(z));
        assert_eq!(f.body_facts[1].terms[0], Term::Const(z));
    }

    #[test]
    fn rename_apart_preserves_shape() {
        let r = Rule::new(
            Atom::app("a", &["X", "Y"]),
            vec![Atom::app("p", &["X", "Y"])],
        );
        let r2 = rename_apart(&r);
        assert_ne!(r, r2);
        assert_eq!(r2.head.pred, r.head.pred);
        // Head/body sharing preserved.
        assert_eq!(r2.head.terms, r2.body[0].terms);
    }
}

//! Terms of function-free Datalog: variables and constants.

use crate::intern::{fresh_symbol, Symbol};

/// A constant value. Function-free Datalog only has atomic constants; we
/// support integers and interned symbolic constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer constant, e.g. `42`.
    Int(i64),
    /// Symbolic constant, e.g. `alice`. Also used for the skolem constants
    /// introduced by freezing (see [`crate::subst::freeze_rule`]).
    Sym(Symbol),
}

impl Value {
    /// Symbolic constant from a string.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    /// Integer constant.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// A fresh skolem constant, distinct from all interned symbols.
    pub fn fresh_skolem() -> Value {
        Value::Sym(fresh_symbol("$c"))
    }

    /// True if this is a skolem constant produced by [`Value::fresh_skolem`].
    pub fn is_skolem(&self) -> bool {
        match self {
            Value::Sym(s) => s.as_str().starts_with("$c"),
            Value::Int(_) => false,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

/// A variable, identified by its (interned) name.
///
/// Variables are rule-scoped: the same name in two rules denotes two
/// unrelated variables. Wildcards (`_` in the text format) are expanded by
/// the parser into fresh variables named `$_N`, so by the time an AST exists
/// every variable is named.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Symbol);

impl Var {
    /// Variable with the given name.
    pub fn new(name: &str) -> Var {
        Var(Symbol::intern(name))
    }

    /// A fresh variable guaranteed not to collide with any existing name.
    pub fn fresh() -> Var {
        Var(fresh_symbol("$v"))
    }

    /// A fresh variable rendered as an anonymous wildcard.
    pub fn fresh_wildcard() -> Var {
        Var(fresh_symbol("$_"))
    }

    /// Whether this variable came from a `_` wildcard.
    pub fn is_wildcard(&self) -> bool {
        self.0.as_str().starts_with("$_")
    }

    /// The variable's name.
    pub fn name(&self) -> String {
        self.0.as_str()
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_wildcard() {
            write!(f, "_")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A term: variable or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Symbolic constant term.
    pub fn sym(name: &str) -> Term {
        Term::Const(Value::sym(name))
    }

    /// Integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_display() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::sym("abc").to_string(), "abc");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        let c = Term::int(1);
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var(), Some(Var::new("X")));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(Value::Int(1)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn wildcards_render_anonymously() {
        let w = Var::fresh_wildcard();
        assert!(w.is_wildcard());
        assert_eq!(w.to_string(), "_");
        let x = Var::new("X");
        assert!(!x.is_wildcard());
        assert_eq!(x.to_string(), "X");
    }

    #[test]
    fn skolems_are_recognizable() {
        let s = Value::fresh_skolem();
        assert!(s.is_skolem());
        assert!(!Value::sym("ordinary").is_skolem());
        assert!(!Value::int(0).is_skolem());
    }

    #[test]
    fn value_ordering_is_total() {
        let mut vs = [
            Value::sym("b"),
            Value::int(2),
            Value::sym("a"),
            Value::int(1),
        ];
        vs.sort();
        // Ints sort before syms (enum order), each group internally ordered.
        assert_eq!(vs[0], Value::int(1));
        assert_eq!(vs[1], Value::int(2));
    }
}

//! Predicate references: a name plus an optional existential adornment.

use crate::adornment::Adornment;
use crate::intern::Symbol;

/// A reference to a (possibly adorned) predicate.
///
/// Two adorned versions of the same base predicate (`p[nn]` and `p[nd]`) are
/// *different* predicates for every downstream purpose — storage, evaluation,
/// dependency analysis — exactly as in the paper's adorned program
/// `P^{e,ad}`. The base name is retained so that optimizers and reports can
/// relate versions of the same predicate (e.g. for the `covers` relation of
/// §5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredRef {
    /// Base predicate name.
    pub name: Symbol,
    /// Existential adornment, if this is an adorned version.
    pub adornment: Option<Adornment>,
}

impl PredRef {
    /// An unadorned predicate.
    pub fn new(name: &str) -> PredRef {
        PredRef {
            name: Symbol::intern(name),
            adornment: None,
        }
    }

    /// An adorned predicate, e.g. `PredRef::adorned("p", "nd")`.
    ///
    /// # Panics
    /// Panics if `adornment` contains characters other than `n`/`d`; use
    /// [`Adornment::parse`] directly for fallible construction.
    pub fn adorned(name: &str, adornment: &str) -> PredRef {
        PredRef {
            name: Symbol::intern(name),
            adornment: Some(
                Adornment::parse(adornment).expect("adornment must consist of 'n' and 'd'"),
            ),
        }
    }

    /// Same base predicate with a different adornment.
    pub fn with_adornment(&self, adornment: Adornment) -> PredRef {
        PredRef {
            name: self.name,
            adornment: Some(adornment),
        }
    }

    /// Strip the adornment, recovering the base predicate.
    pub fn base(&self) -> PredRef {
        PredRef {
            name: self.name,
            adornment: None,
        }
    }

    /// Whether this predicate carries an adornment.
    pub fn is_adorned(&self) -> bool {
        self.adornment.is_some()
    }

    /// The number of arguments atoms of this predicate carry. For an
    /// unadorned predicate this is unknown from the `PredRef` alone (`None`).
    /// For an adorned predicate *before projection* it is the adornment
    /// length; `datalog-opt`'s projection phase shrinks atoms to
    /// [`Adornment::needed_count`] arguments. Callers should consult the
    /// program's arity table (see [`crate::program::Program::arities`]) for
    /// the authoritative answer; this is a helper for adorned-only logic.
    pub fn adornment_len(&self) -> Option<usize> {
        self.adornment.as_ref().map(|a| a.len())
    }
}

impl std::fmt::Display for PredRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.adornment {
            write!(f, "[{a}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adorned_versions_are_distinct_predicates() {
        let p_nn = PredRef::adorned("p", "nn");
        let p_nd = PredRef::adorned("p", "nd");
        let p = PredRef::new("p");
        assert_ne!(p_nn, p_nd);
        assert_ne!(p_nn, p);
        assert_eq!(p_nn.base(), p);
        assert_eq!(p_nd.base(), p);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PredRef::new("edge").to_string(), "edge");
        assert_eq!(PredRef::adorned("p", "nd").to_string(), "p[nd]");
        assert_eq!(PredRef::adorned("b", "").to_string(), "b[]");
    }

    #[test]
    fn with_adornment_replaces() {
        let p = PredRef::adorned("p", "nn");
        let q = p.with_adornment(Adornment::parse("nd").unwrap());
        assert_eq!(q, PredRef::adorned("p", "nd"));
        assert!(q.is_adorned());
        assert_eq!(q.adornment_len(), Some(2));
        assert_eq!(PredRef::new("p").adornment_len(), None);
    }
}

//! Atoms: a predicate applied to a list of terms.

use crate::pred::PredRef;
use crate::term::{Term, Value, Var};

/// An atom `p(t1, ..., tk)`. With `k = 0` this is a propositional (boolean)
/// atom such as the `B` predicates introduced by the connected-component
/// rewriting of §3.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The (possibly adorned) predicate.
    pub pred: PredRef,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: PredRef, terms: Vec<Term>) -> Atom {
        Atom { pred, terms }
    }

    /// Convenience: unadorned predicate applied to variables named by
    /// `vars`, e.g. `Atom::app("p", &["X", "Y"])`.
    pub fn app(pred: &str, vars: &[&str]) -> Atom {
        Atom {
            pred: PredRef::new(pred),
            terms: vars.iter().map(|v| Term::var(v)).collect(),
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Whether the atom has no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// All variables in order of occurrence (with repetitions).
    pub fn var_occurrences(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// The set of distinct variables, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        for v in self.var_occurrences() {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// If ground, the tuple of constant values.
    pub fn ground_values(&self) -> Option<Vec<Value>> {
        self.terms.iter().map(|t| t.as_const()).collect()
    }

    /// A ground atom (fact) from a predicate and values.
    pub fn fact(pred: PredRef, values: Vec<Value>) -> Atom {
        Atom {
            pred,
            terms: values.into_iter().map(Term::Const).collect(),
        }
    }

    /// Positions (indices) at which `v` occurs.
    pub fn positions_of(&self, v: Var) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i))
            .collect()
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display() {
        let a = Atom::app("p", &["X", "Y"]);
        assert_eq!(a.to_string(), "p(X, Y)");
        let b = Atom::new(PredRef::new("b2"), vec![]);
        assert_eq!(b.to_string(), "b2");
        let c = Atom::new(
            PredRef::adorned("q", "nd"),
            vec![Term::var("X"), Term::int(3)],
        );
        assert_eq!(c.to_string(), "q[nd](X, 3)");
    }

    #[test]
    fn groundness() {
        let f = Atom::fact(PredRef::new("p"), vec![Value::int(1), Value::sym("a")]);
        assert!(f.is_ground());
        assert_eq!(
            f.ground_values(),
            Some(vec![Value::int(1), Value::sym("a")])
        );
        let a = Atom::app("p", &["X"]);
        assert!(!a.is_ground());
        assert_eq!(a.ground_values(), None);
    }

    #[test]
    fn var_collection_dedups_in_order() {
        let a = Atom::new(
            PredRef::new("p"),
            vec![Term::var("X"), Term::var("Y"), Term::var("X")],
        );
        assert_eq!(a.vars(), vec![Var::new("X"), Var::new("Y")]);
        assert_eq!(a.var_occurrences().count(), 3);
        assert_eq!(a.positions_of(Var::new("X")), vec![0, 2]);
        assert_eq!(a.positions_of(Var::new("Z")), Vec::<usize>::new());
    }
}

//! Existential adornments (§2 of the paper).
//!
//! An adornment is a string over `{n, d}`: `n` marks a *needed* argument
//! position, `d` a *don't-care* (existential) one. An adorned version of a
//! predicate is a query form: `p[nd](X, Y)` denotes interest in all `X` such
//! that *some* `Y` makes `p(X, Y)` true.
//!
//! These adornments are distinct from the classical *bound/free* (`b`/`f`)
//! adornments of Magic Sets; the paper is explicit about this (§2 footnote).
//! Bound/free adornments live in `datalog-magic`.

/// One adornment position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ad {
    /// Needed: all values for this argument must be computed.
    N,
    /// Don't-care / existential: only the existence of a value matters.
    D,
}

impl Ad {
    /// Render as the paper's single letter.
    pub fn letter(self) -> char {
        match self {
            Ad::N => 'n',
            Ad::D => 'd',
        }
    }
}

/// An adornment string, e.g. `nnd`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(pub Vec<Ad>);

impl Adornment {
    /// Parse from a string of `n`s and `d`s. Returns `None` on any other
    /// character.
    pub fn parse(s: &str) -> Option<Adornment> {
        let mut v = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                'n' => v.push(Ad::N),
                'd' => v.push(Ad::D),
                _ => return None,
            }
        }
        Some(Adornment(v))
    }

    /// All-needed adornment of the given length.
    pub fn all_needed(len: usize) -> Adornment {
        Adornment(vec![Ad::N; len])
    }

    /// Length of the adornment string (the predicate's *original* arity,
    /// which after projection may exceed its argument count).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the adornment is empty (zero-ary predicate).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of needed (`n`) positions.
    pub fn needed_count(&self) -> usize {
        self.0.iter().filter(|a| **a == Ad::N).count()
    }

    /// Indices of the needed positions, in order.
    pub fn needed_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (*a == Ad::N).then_some(i))
            .collect()
    }

    /// Indices of the existential (`d`) positions, in order.
    pub fn existential_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (*a == Ad::D).then_some(i))
            .collect()
    }

    /// Whether any position is existential.
    pub fn has_existential(&self) -> bool {
        self.0.contains(&Ad::D)
    }

    /// Whether every position is needed.
    pub fn is_all_needed(&self) -> bool {
        !self.has_existential()
    }

    /// The *covers* relation of §5 of the paper: `a1` covers `a` when both
    /// have the same length and every `n` in `a` is an `n` in `a1`.
    /// Intuitively any tuple of the `a1`-version, projected, is a tuple of
    /// the `a`-version, so the unit rule `q^a(t) :- q^a1(t1)` may always be
    /// added.
    pub fn is_covered_by(&self, a1: &Adornment) -> bool {
        self.len() == a1.len()
            && self
                .0
                .iter()
                .zip(a1.0.iter())
                .all(|(mine, theirs)| *mine == Ad::D || *theirs == Ad::N)
    }
}

impl std::fmt::Display for Adornment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for a in &self.0 {
            write!(f, "{}", a.letter())?;
        }
        Ok(())
    }
}

impl std::ops::Index<usize> for Adornment {
    type Output = Ad;
    fn index(&self, i: usize) -> &Ad {
        &self.0[i]
    }
}

impl FromIterator<Ad> for Adornment {
    fn from_iter<I: IntoIterator<Item = Ad>>(iter: I) -> Adornment {
        Adornment(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["", "n", "d", "nd", "nnd", "dn", "ndndn"] {
            let a = Adornment::parse(s).unwrap();
            assert_eq!(a.to_string(), s);
        }
        assert!(Adornment::parse("nxd").is_none());
        assert!(Adornment::parse("ND").is_none());
    }

    #[test]
    fn position_queries() {
        let a = Adornment::parse("ndn").unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.needed_count(), 2);
        assert_eq!(a.needed_positions(), vec![0, 2]);
        assert_eq!(a.existential_positions(), vec![1]);
        assert!(a.has_existential());
        assert!(!a.is_all_needed());
        assert!(Adornment::parse("nn").unwrap().is_all_needed());
    }

    #[test]
    fn covers_relation() {
        // nd is covered by nn (the d may become n), but nn is not covered by nd.
        let nd = Adornment::parse("nd").unwrap();
        let nn = Adornment::parse("nn").unwrap();
        assert!(nd.is_covered_by(&nn));
        assert!(!nn.is_covered_by(&nd));
        // Every adornment covers itself.
        assert!(nd.is_covered_by(&nd));
        assert!(nn.is_covered_by(&nn));
        // Length mismatch never covers.
        let n = Adornment::parse("n").unwrap();
        assert!(!nd.is_covered_by(&n));
    }

    #[test]
    fn all_needed_constructor() {
        let a = Adornment::all_needed(3);
        assert_eq!(a.to_string(), "nnn");
        assert!(Adornment::all_needed(0).is_empty());
    }
}

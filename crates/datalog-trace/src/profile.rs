//! Per-rule and per-iteration evaluation profiles.
//!
//! The paper's claims are all *attributable* cost claims: the §3.1 boolean
//! cut retires specific rules, §3.2 projection shrinks specific predicates'
//! arities (and with them duplicate-elimination cost), §3.3/§5 deletion
//! removes specific rules' join work. A single global counter blob cannot
//! confirm any of that; these types carry the attribution.
//!
//! Counter-to-paper mapping:
//!
//! * [`RuleProfile::retired_at`] — the fixpoint iteration the §3.1 cut
//!   retired the rule (`None` = never retired);
//! * [`RuleProfile::duplicates`] — per-rule duplicate-elimination hits, the
//!   cost §3.2 attacks by dropping argument positions;
//! * [`RuleProfile::tuples_scanned`] / [`RuleProfile::index_probes`] — the
//!   per-rule join effort that §3.3/§5 deletions eliminate outright.

use crate::json::Json;

/// Counters one rule accumulated over a whole fixpoint evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// Index of the rule in the evaluated program.
    pub rule_idx: usize,
    /// The rule, rendered as source text.
    pub rule: String,
    /// Head predicate name.
    pub head: String,
    /// Join variants attempted (naive rounds count one per rule, semi-naive
    /// rounds one per delta literal with a non-empty delta).
    pub evals: u64,
    /// Successful full-body instantiations (including re-derivations).
    pub derivations: u64,
    /// Distinct new facts this rule contributed.
    pub facts_derived: u64,
    /// Derivations whose head fact already existed (§3.2's cost).
    pub duplicates: u64,
    /// Tuples enumerated by this rule's scans and probes.
    pub tuples_scanned: u64,
    /// Hash-index probes issued by this rule (including negation checks).
    pub index_probes: u64,
    /// Wall time spent inside this rule's join variants, in nanoseconds.
    pub wall_ns: u64,
    /// Iteration at which the §3.1 boolean cut retired this rule.
    pub retired_at: Option<usize>,
}

impl RuleProfile {
    /// JSON object for export.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("rule_idx", self.rule_idx)
            .with("rule", self.rule.as_str())
            .with("head", self.head.as_str())
            .with("evals", self.evals)
            .with("derivations", self.derivations)
            .with("facts_derived", self.facts_derived)
            .with("duplicates", self.duplicates)
            .with("tuples_scanned", self.tuples_scanned)
            .with("index_probes", self.index_probes)
            .with("wall_ns", self.wall_ns)
            .with("retired_at", self.retired_at)
    }
}

/// New facts one predicate gained in one fixpoint iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredDelta {
    /// Predicate name.
    pub pred: String,
    /// Facts added this iteration.
    pub new_facts: u64,
    /// Total facts stored after this iteration.
    pub total: u64,
}

/// One fixpoint iteration in the evaluation timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IterationProfile {
    /// Global iteration number (the seed round of the first stratum is 1).
    pub iteration: usize,
    /// Stratum whose fixpoint this iteration belongs to.
    pub stratum: usize,
    /// Wall time of the iteration, in nanoseconds.
    pub wall_ns: u64,
    /// Wall time of the enumeration half: serially, the sum over tasks of
    /// their enumeration time; in parallel, the wall time of the fan-out
    /// region (workers overlap, so this can be far below the per-task sum).
    pub parallel_ns: u64,
    /// Wall time of the merge half: applying the buffered candidate tuples
    /// to the database in fixed task order.
    pub merge_ns: u64,
    /// Schedulable tasks this iteration decomposed into — (rule, variant,
    /// chunk) units. Planned from frozen iteration-start state, so the
    /// count is identical at any thread count.
    pub tasks: u64,
    /// Per-predicate growth (only predicates that gained facts appear).
    pub deltas: Vec<PredDelta>,
    /// Rules the §3.1 cut retired at the end of this iteration.
    pub rules_retired: u64,
}

impl IterationProfile {
    /// JSON object for export.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("iteration", self.iteration)
            .with("stratum", self.stratum)
            .with("wall_ns", self.wall_ns)
            .with("parallel_ns", self.parallel_ns)
            .with("merge_ns", self.merge_ns)
            .with("tasks", self.tasks)
            .with("rules_retired", self.rules_retired)
            .with(
                "deltas",
                Json::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            Json::obj()
                                .with("pred", d.pred.as_str())
                                .with("new_facts", d.new_facts)
                                .with("total", d.total)
                        })
                        .collect(),
                ),
            )
    }
}

/// The full evaluation profile: one [`RuleProfile`] per rule plus the
/// per-iteration timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalProfile {
    /// Per-rule counters, in program rule order.
    pub rules: Vec<RuleProfile>,
    /// Per-iteration predicate growth.
    pub timeline: Vec<IterationProfile>,
}

impl EvalProfile {
    /// JSON object for export.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with(
                "rules",
                Json::Arr(self.rules.iter().map(RuleProfile::to_json).collect()),
            )
            .with(
                "timeline",
                Json::Arr(
                    self.timeline
                        .iter()
                        .map(IterationProfile::to_json)
                        .collect(),
                ),
            )
    }

    /// A copy with every wall-time field zeroed, leaving only the
    /// deterministic counters. Wall times legitimately differ between runs
    /// (and between thread counts); everything else in a profile is a pure
    /// function of the program and input, so differential tests compare
    /// `counters_only()` for equality.
    pub fn counters_only(&self) -> EvalProfile {
        let mut p = self.clone();
        for r in &mut p.rules {
            r.wall_ns = 0;
        }
        for it in &mut p.timeline {
            it.wall_ns = 0;
            it.parallel_ns = 0;
            it.merge_ns = 0;
        }
        p
    }

    /// Rule indices ranked by wall time (hottest first; ties by derivations
    /// then source order, so the ranking is deterministic).
    pub fn ranked(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.rules.len()).collect();
        idx.sort_by_key(|&i| {
            let r = &self.rules[i];
            (
                std::cmp::Reverse(r.wall_ns),
                std::cmp::Reverse(r.derivations),
                r.rule_idx,
            )
        });
        idx
    }

    /// Render the ranked hot-rule table (all rules when `top` is `None`).
    pub fn hot_rules_table(&self, top: Option<usize>) -> String {
        use std::fmt::Write as _;
        let order = self.ranked();
        let shown = top.unwrap_or(order.len()).min(order.len());
        let headers = [
            "#", "wall_us", "evals", "derivs", "facts", "dups", "scanned", "probes", "retired",
            "rule",
        ];
        let mut cells: Vec<[String; 10]> = vec![headers.map(String::from)];
        for (rank, &i) in order.iter().take(shown).enumerate() {
            let r = &self.rules[i];
            cells.push([
                (rank + 1).to_string(),
                format!("{:.1}", r.wall_ns as f64 / 1e3),
                r.evals.to_string(),
                r.derivations.to_string(),
                r.facts_derived.to_string(),
                r.duplicates.to_string(),
                r.tuples_scanned.to_string(),
                r.index_probes.to_string(),
                r.retired_at
                    .map_or_else(|| "-".into(), |it| format!("@{it}")),
                r.rule.clone(),
            ]);
        }
        let widths: Vec<usize> = (0..9)
            .map(|c| cells.iter().map(|row| row[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for row in &cells {
            let mut line = String::new();
            for (c, w) in widths.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", row[c], width = w);
            }
            line.push_str(&row[9]);
            let _ = writeln!(out, "  {line}");
        }
        if shown < order.len() {
            let n = order.len() - shown;
            let s = if n == 1 { "" } else { "s" };
            let _ = writeln!(out, "  ... ({n} more rule{s})");
        }
        out
    }

    /// Render the per-iteration timeline as text.
    pub fn timeline_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for it in &self.timeline {
            let deltas: Vec<String> = it
                .deltas
                .iter()
                .map(|d| format!("{}+{} (={})", d.pred, d.new_facts, d.total))
                .collect();
            let retired = if it.rules_retired > 0 {
                format!("  [{} rule(s) retired]", it.rules_retired)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  iter {:>3} (stratum {}) {:>9.1} us (enum {:.1} + merge {:.1}, {} task(s))  {}{}",
                it.iteration,
                it.stratum,
                it.wall_ns as f64 / 1e3,
                it.parallel_ns as f64 / 1e3,
                it.merge_ns as f64 / 1e3,
                it.tasks,
                if deltas.is_empty() {
                    "no growth".to_string()
                } else {
                    deltas.join("  ")
                },
                retired
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvalProfile {
        EvalProfile {
            rules: vec![
                RuleProfile {
                    rule_idx: 0,
                    rule: "a(X, Y) :- p(X, Z), a(Z, Y).".into(),
                    head: "a".into(),
                    evals: 4,
                    derivations: 10,
                    facts_derived: 6,
                    duplicates: 4,
                    tuples_scanned: 40,
                    index_probes: 12,
                    wall_ns: 5_000,
                    retired_at: None,
                },
                RuleProfile {
                    rule_idx: 1,
                    rule: "b :- big(W).".into(),
                    head: "b".into(),
                    evals: 1,
                    derivations: 1,
                    facts_derived: 1,
                    duplicates: 0,
                    tuples_scanned: 1,
                    index_probes: 0,
                    wall_ns: 9_000,
                    retired_at: Some(2),
                },
            ],
            timeline: vec![IterationProfile {
                iteration: 1,
                stratum: 0,
                wall_ns: 14_000,
                parallel_ns: 11_000,
                merge_ns: 3_000,
                tasks: 3,
                deltas: vec![PredDelta {
                    pred: "a".into(),
                    new_facts: 6,
                    total: 6,
                }],
                rules_retired: 1,
            }],
        }
    }

    #[test]
    fn ranking_is_by_wall_time() {
        let p = sample();
        assert_eq!(p.ranked(), vec![1, 0]);
    }

    #[test]
    fn hot_rules_table_renders_ranked() {
        let p = sample();
        let t = p.hot_rules_table(None);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("wall_us"));
        assert!(lines[1].contains("b :- big(W)."), "{t}");
        assert!(lines[1].contains("@2"), "{t}");
        assert!(lines[2].contains("a(X, Y)"), "{t}");
        // top=1 truncates and says so.
        let t1 = p.hot_rules_table(Some(1));
        assert!(t1.contains("1 more rule"), "{t1}");
    }

    #[test]
    fn timeline_table_renders_deltas_and_retirements() {
        let p = sample();
        let t = p.timeline_table();
        assert!(t.contains("iter   1"));
        assert!(t.contains("a+6 (=6)"));
        assert!(t.contains("1 rule(s) retired"));
        assert!(t.contains("enum 11.0 + merge 3.0, 3 task(s)"), "{t}");
    }

    #[test]
    fn json_roundtrips_fields() {
        let p = sample();
        let j = p.to_json();
        let s = j.to_string();
        assert!(s.contains("\"retired_at\":2"));
        assert!(s.contains("\"retired_at\":null"));
        assert!(s.contains("\"timeline\""));
        assert!(s.contains("\"new_facts\":6"));
        assert!(s.contains("\"parallel_ns\":11000"));
        assert!(s.contains("\"merge_ns\":3000"));
        assert!(s.contains("\"tasks\":3"));
    }

    #[test]
    fn counters_only_zeroes_every_wall_field() {
        let stripped = sample().counters_only();
        assert_eq!(stripped.rules[0].wall_ns, 0);
        assert_eq!(stripped.rules[1].wall_ns, 0);
        assert_eq!(stripped.timeline[0].wall_ns, 0);
        assert_eq!(stripped.timeline[0].parallel_ns, 0);
        assert_eq!(stripped.timeline[0].merge_ns, 0);
        // The deterministic fields survive untouched.
        assert_eq!(stripped.timeline[0].tasks, 3);
        assert_eq!(stripped.rules[0].derivations, 10);
        assert_eq!(stripped.rules[1].retired_at, Some(2));
    }
}

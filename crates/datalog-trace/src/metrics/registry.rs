//! The metric registry: named families of counters, gauges and histograms
//! with Prometheus text exposition and [`Json`] readout.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed out at
//! registration time; the hot path touches only the handle's atomics and
//! never the registry lock, which is taken solely to register and to
//! render. Families keep registration order, so scrapes are stable and
//! diffable like every other JSON surface in the workspace.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::hist::{bucket_bounds, HistSnapshot, Histogram};
use crate::json::Json;

/// A monotone counter. One relaxed `fetch_add` per increment; counters are
/// cheap enough that they record even under a disabled registry (only
/// histogram sampling is gated — see [`Registry::disabled`]).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zero-valued counter.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (in-flight queries, open connections). Signed so
/// transient dips below a sampled baseline cannot wrap.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Zero-valued gauge.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrite the value (used for sampled gauges at scrape time).
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract 1.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Metric family kind, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-linear latency histogram (nanosecond samples, rendered as
    /// seconds in Prometheus exposition).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// Process-wide metric registry.
///
/// * `Registry::new()` — the real thing: histograms sample.
/// * `Registry::disabled()` — the no-op baseline for overhead measurement:
///   histograms drop samples at a single branch; counters and gauges still
///   record (they are a handful of relaxed adds per request and keep
///   `STATS` truthful in either mode).
pub struct Registry {
    on: bool,
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|fs| fs.len()).unwrap_or(0);
        f.debug_struct("Registry")
            .field("on", &self.on)
            .field("families", &n)
            .finish()
    }
}

impl Registry {
    /// A recording registry.
    pub fn new() -> Registry {
        Registry {
            on: true,
            families: Mutex::new(Vec::new()),
        }
    }

    /// The no-op variant: identical shape, histograms don't sample.
    pub fn disabled() -> Registry {
        Registry {
            on: false,
            families: Mutex::new(Vec::new()),
        }
    }

    /// Whether histograms registered here sample.
    pub fn enabled(&self) -> bool {
        self.on
    }

    fn families(&self) -> std::sync::MutexGuard<'_, Vec<Family>> {
        // A poisoned registry lock only means a panic elsewhere while
        // rendering; the data (all atomics) is still sound.
        self.families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name} re-registered as a different kind"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            return clone_metric(&s.metric);
        }
        let metric = make();
        family.series.push(Series {
            labels,
            metric: clone_metric(&metric),
        });
        metric
    }

    /// Register (or re-fetch) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or re-fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or re-fetch) a histogram series. The histogram samples iff
    /// the registry is enabled.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let on = self.on;
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Metric::Histogram(Arc::new(Histogram::with_enabled(on)))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Prometheus text exposition format (version 0.0.4): `# HELP` /
    /// `# TYPE` per family, one line per series, histograms as cumulative
    /// `_bucket{le="…"}` plus `_sum` / `_count`. Nanosecond samples are
    /// rendered as seconds, per Prometheus convention for `_seconds` names.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in self.families().iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
            for s in &f.series {
                match &s.metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            label_set(&s.labels, None),
                            c.get()
                        ));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            label_set(&s.labels, None),
                            g.get()
                        ));
                    }
                    Metric::Histogram(h) => {
                        render_histogram(&mut out, &f.name, &s.labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }

    /// JSON readout in the workspace's house style: per family, per series,
    /// scalar values for counters/gauges and `{count, sum_ns, max_ns,
    /// mean_ns, p50_ns, p90_ns, p99_ns}` for histograms.
    pub fn to_json(&self) -> Json {
        let mut arr = Vec::new();
        for f in self.families().iter() {
            let mut series = Vec::new();
            for s in &f.series {
                let mut labels = Json::obj();
                for (k, v) in &s.labels {
                    labels.set(k, v.as_str());
                }
                let j = match &s.metric {
                    Metric::Counter(c) => Json::obj().with("labels", labels).with("value", c.get()),
                    Metric::Gauge(g) => Json::obj().with("labels", labels).with("value", g.get()),
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        Json::obj()
                            .with("labels", labels)
                            .with("count", snap.count)
                            .with("sum_ns", snap.sum)
                            .with("max_ns", snap.max)
                            .with("mean_ns", snap.mean())
                            .with("p50_ns", snap.quantile(0.50))
                            .with("p90_ns", snap.quantile(0.90))
                            .with("p99_ns", snap.quantile(0.99))
                    }
                };
                series.push(j);
            }
            arr.push(
                Json::obj()
                    .with("name", f.name.as_str())
                    .with("kind", f.kind.as_str())
                    .with("help", f.help.as_str())
                    .with("series", series),
            );
        }
        Json::obj().with("metrics", Json::Arr(arr))
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

/// Render a `{k="v",…}` label set, optionally with a trailing `le`.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Seconds rendering of a nanosecond boundary, shortest round-trip form.
fn secs(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistSnapshot,
) {
    // Emit only occupied buckets (cumulatively) plus +Inf — the fixed
    // 496-slot layout would otherwise dominate the scrape. `le` values
    // stay sorted because bucket order is value order.
    let mut cumulative = 0u64;
    for (i, &n) in snap.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let (_, hi) = bucket_bounds(i);
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            label_set(labels, Some(&secs(hi)))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        label_set(labels, Some("+Inf")),
        snap.count
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        label_set(labels, None),
        secs(snap.sum)
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        label_set(labels, None),
        snap.count
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("xdl_requests_total", "Requests.", &[("verb", "QUERY")]);
        c.add(3);
        let g = r.gauge("xdl_inflight", "In-flight queries.", &[]);
        g.set(2);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP xdl_requests_total Requests.\n"));
        assert!(text.contains("# TYPE xdl_requests_total counter\n"));
        assert!(text.contains("xdl_requests_total{verb=\"QUERY\"} 3\n"));
        assert!(text.contains("xdl_inflight 2\n"));
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_consistent() {
        let r = Registry::new();
        let h = r.histogram("xdl_request_seconds", "Latency.", &[]);
        h.record(10);
        h.record(10);
        h.record(1_000_000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE xdl_request_seconds histogram\n"));
        assert!(text.contains("xdl_request_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("xdl_request_seconds_count 3\n"));
        // Cumulative: the +Inf bucket equals the count; earlier buckets
        // are non-decreasing (checked by the protocol-level parser test in
        // datalog-server too).
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("xdl_request_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn re_registration_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("xdl_x_total", "X.", &[]);
        let b = r.counter("xdl_x_total", "X.", &[]);
        a.inc();
        assert_eq!(b.get(), 1);
        // Distinct labels are distinct series under one family.
        let c = r.counter("xdl_x_total", "X.", &[("k", "v")]);
        c.add(5);
        assert_eq!(b.get(), 1);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE xdl_x_total").count(), 1);
    }

    #[test]
    fn disabled_registry_gates_histograms_not_counters() {
        let r = Registry::disabled();
        let c = r.counter("xdl_c_total", "C.", &[]);
        let h = r.histogram("xdl_h_seconds", "H.", &[]);
        c.inc();
        h.record(100);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.enabled());
    }

    #[test]
    fn json_readout_has_quantiles() {
        let r = Registry::new();
        let h = r.histogram("xdl_h_seconds", "H.", &[]);
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let j = r.to_json();
        let text = j.to_string();
        assert!(text.contains("\"p99_ns\""));
        assert!(text.contains("\"count\":100"));
    }
}

//! # metrics — always-on server telemetry
//!
//! A std-only metrics subsystem in three pieces:
//!
//! * [`hist`] — fixed-size log-linear (HDR-style) latency histograms over
//!   relaxed atomics, with p50/p90/p99/max readout;
//! * [`registry`] — a process-wide [`Registry`] of named counter / gauge /
//!   histogram families rendering both Prometheus text exposition and the
//!   workspace's [`Json`](crate::Json) style;
//! * [`EvalHists`] — the engine-side bundle: per-task enumeration wall,
//!   per-worker queue wait, and per-round merge stall, which is exactly
//!   the data the ROADMAP's skew-aware chunking item needs.
//!
//! The overhead contract (measured by bench experiment e13): a recording
//! span is two `Instant::now()` calls plus one relaxed `fetch_add` chain;
//! a disabled registry reduces every histogram to a single branch. The
//! registry lock is touched only at registration and scrape time, never
//! per sample.

pub mod hist;
pub mod registry;

pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram, BUCKETS, SUB_BUCKETS};
pub use registry::{Counter, Gauge, MetricKind, Registry};

use std::sync::Arc;

/// Histogram handles threaded into the evaluation engine via
/// `EvalOptions`. Cloning shares the underlying atomics, so every worker
/// thread records into the same fixed arrays without coordination.
#[derive(Debug, Clone)]
pub struct EvalHists {
    /// Wall time of one enumeration task (nanoseconds).
    pub task_enum: Arc<Histogram>,
    /// Per-worker wait: fan-out start until the worker claims its first
    /// task — thread spawn plus queue latency (nanoseconds).
    pub task_wait: Arc<Histogram>,
    /// Per-round merge stall: the single-threaded apply phase that workers
    /// sit out (nanoseconds).
    pub merge: Arc<Histogram>,
}

impl EvalHists {
    /// Register the three engine histograms on `registry`.
    pub fn register(registry: &Registry) -> EvalHists {
        EvalHists {
            task_enum: registry.histogram(
                "xdl_eval_task_enum_seconds",
                "Wall time of one parallel enumeration task.",
                &[],
            ),
            task_wait: registry.histogram(
                "xdl_eval_task_wait_seconds",
                "Per-worker wait from fan-out start to first claimed task.",
                &[],
            ),
            merge: registry.histogram(
                "xdl_eval_merge_seconds",
                "Single-threaded merge stall per evaluation round.",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Satellite coverage: exact bucket edges, saturation at the top
    // bucket, merge == concatenation, and concurrent recording losing
    // nothing across 8 threads.

    #[test]
    fn values_on_bucket_edges_land_in_their_own_bucket() {
        // Both edges of every bucket belong to that bucket, and the value
        // one past the upper edge belongs to the next.
        for i in 0..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
        // Powers of two are always lower edges.
        for p in 4..63u32 {
            let v = 1u64 << p;
            assert_eq!(bucket_bounds(bucket_index(v)).0, v);
        }
    }

    #[test]
    fn saturation_at_the_max_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 2, "both land in the top bucket");
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<u64> = (0..500).map(|i| i * 37 % 10_000).collect();
        let ys: Vec<u64> = (0..300).map(|i| i * 101 % 1_000_000).collect();
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread across many buckets.
                        h.record(t * 1_000_000 + i * 13);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.count, total, "count lost samples");
        let bucket_total: u64 = snap.buckets.iter().sum();
        assert_eq!(bucket_total, total, "buckets lost samples");
        let expected_sum: u64 = (0..THREADS as u64)
            .flat_map(|t| (0..PER_THREAD).map(move |i| t * 1_000_000 + i * 13))
            .sum();
        assert_eq!(snap.sum, expected_sum, "sum lost samples");
    }

    #[test]
    fn eval_hists_register_on_both_registry_modes() {
        let on = Registry::new();
        let hists = EvalHists::register(&on);
        hists.task_enum.record(10);
        assert_eq!(hists.task_enum.snapshot().count, 1);

        let off = Registry::disabled();
        let noop = EvalHists::register(&off);
        noop.task_enum.record(10);
        assert_eq!(noop.task_enum.snapshot().count, 0);
    }
}

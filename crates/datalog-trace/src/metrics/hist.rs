//! Log-linear latency histograms over relaxed atomics.
//!
//! The layout is the HDR-histogram idea reduced to its std-only core: the
//! value domain (`u64`, nanoseconds by convention) is split into octaves,
//! each octave into [`SUB_BUCKETS`] linear sub-buckets, so relative error
//! is bounded by `1/SUB_BUCKETS` (12.5%) everywhere while the whole range
//! `0..=u64::MAX` fits in a fixed [`BUCKETS`]-slot array. Recording is one
//! relaxed `fetch_add` per sample plus three bookkeeping adds — no locks,
//! no allocation, safe to call from every evaluation worker at once.
//!
//! A histogram can be constructed *disabled* (see
//! [`Registry::disabled`](super::Registry::disabled)), in which case
//! [`Histogram::record`] is a single predictable branch. That is the
//! "no-op registry" the e13 overhead experiment compares against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave (8 → ≤12.5% relative error per bucket).
pub const SUB_BUCKETS: usize = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;
/// Total bucket count covering all of `u64`: indexes `0..16` are exact
/// (values below `2 * SUB_BUCKETS`), then 8 per octave up to `2^64`.
pub const BUCKETS: usize = 2 * SUB_BUCKETS + (63 - SUB_BITS as usize) * SUB_BUCKETS;

/// Map a value to its bucket index. Total order preserving: if `a <= b`
/// then `bucket_index(a) <= bucket_index(b)`.
pub fn bucket_index(v: u64) -> usize {
    if v < (2 * SUB_BUCKETS) as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    (shift as usize + 1) * SUB_BUCKETS + sub
}

/// Inclusive `[lower, upper]` value range of bucket `i`.
///
/// Every value in the range maps to `i` under [`bucket_index`], and the
/// ranges tile the whole domain: `lower(i + 1) == upper(i) + 1`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index out of range");
    if i < 2 * SUB_BUCKETS {
        return (i as u64, i as u64);
    }
    let shift = (i / SUB_BUCKETS - 1) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    let lower = (SUB_BUCKETS as u64 + sub) << shift;
    let width = 1u64 << shift;
    (lower, lower + (width - 1))
}

/// A fixed-size concurrent histogram. All mutation is `Ordering::Relaxed`:
/// per-sample totals are exact (atomic adds never lose increments), only
/// cross-field consistency during a concurrent snapshot is approximate,
/// which is fine for telemetry.
pub struct Histogram {
    on: bool,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("on", &self.on)
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// A recording histogram.
    pub fn new() -> Histogram {
        Histogram::with_enabled(true)
    }

    /// A histogram that records iff `on` — the no-op variant keeps its
    /// (empty) shape so readout code needs no special casing.
    pub fn with_enabled(on: bool) -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            on,
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Whether this histogram records samples.
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Record one sample (nanoseconds by convention).
    pub fn record(&self, v: u64) {
        if !self.on {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`] as nanoseconds (saturating past `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram's samples into this one. The result is
    /// bucket-for-bucket identical to having recorded the concatenation of
    /// both sample streams.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for readout.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A consistent-enough copy of a [`Histogram`] for quantile readout and
/// exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the midpoint of the bucket holding
    /// the rank, clamped by the observed max. Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + (hi - lo) / 2).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 on empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_exact_below_two_octaves() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize, "v={v}");
        }
    }

    #[test]
    fn bounds_tile_the_domain() {
        // Every bucket's range maps back to it, and ranges are adjacent.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower edge of {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of {i}");
            if i + 1 < BUCKETS {
                let (next_lo, _) = bucket_bounds(i + 1);
                assert_eq!(next_lo, hi + 1, "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_is_monotone_on_edges() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let (lo, _) = bucket_bounds(i);
            let idx = bucket_index(lo);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 20, (1 << 40) + 7] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            // Bucket width ≤ lower/8 for v ≥ 16 → ≤ 12.5% relative error.
            assert!((hi - lo) as f64 <= lo as f64 / 8.0 + 1.0, "v={v}");
        }
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::with_enabled(false);
        h.record(42);
        h.record_duration(Duration::from_millis(5));
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn quantiles_match_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // 12.5% bucket resolution: quantiles land near the true values.
        let p50 = s.quantile(0.50) as f64;
        let p99 = s.quantile(0.99) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }
}

//! A small self-contained JSON document model and serializer.
//!
//! The build environment is offline, so `serde`/`serde_json` are not
//! available; every machine-readable surface in the workspace (profiles,
//! optimizer traces, `--json` CLI flags, the bench harness) serializes
//! through this module instead. Object key order is preserved as inserted,
//! which keeps diffs of exported trajectories stable.

use std::fmt::Write as _;

/// A JSON value. Numbers keep their integer/float distinction so counters
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (exact).
    Int(i64),
    /// Unsigned integer (exact; covers the u64 counters).
    UInt(u64),
    /// Floating point; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert a key (builder style).
    ///
    /// Calling this on a non-object is a builder-invariant violation: it
    /// fires a `debug_assert!` in debug builds and is a documented no-op
    /// (returning the receiver unchanged) in release builds, so a malformed
    /// trace can never abort a serving process. Use [`Json::try_set`] when
    /// the outcome must be observable.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        let ok = self.try_set(key, value);
        debug_assert!(ok, "Json::with on a non-object (ignored in release)");
        self
    }

    /// Insert a key into an object in place.
    ///
    /// Same invariant as [`Json::with`]: `debug_assert!` in debug builds,
    /// documented no-op on non-object receivers in release builds.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let ok = self.try_set(key, value);
        debug_assert!(ok, "Json::set on a non-object (ignored in release)");
    }

    /// Fallible insert: pushes the key onto an object receiver and returns
    /// `true`; returns `false` (leaving the receiver untouched) on any other
    /// variant. This is the non-panicking primitive behind [`Json::with`] /
    /// [`Json::set`].
    pub fn try_set(&mut self, key: &str, value: impl Into<Json>) -> bool {
        match self {
            Json::Obj(pairs) => {
                pairs.push((key.to_string(), value.into()));
                true
            }
            _ => false,
        }
    }

    /// Look up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty serialization (two-space indent). Compact serialization is
    /// `to_string()` via [`std::fmt::Display`].
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so floats
                    // stay floats on re-parse.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u.into())
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<u128> for Json {
    fn from(u: u128) -> Json {
        // Nanosecond counters can exceed u64 in pathological cases; clamp
        // rather than silently wrap (JSON numbers are lossy past 2^53
        // anyway, but exactness up to u64::MAX is preserved).
        Json::UInt(u.min(u64::MAX as u128) as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T> From<Option<T>> for Json
where
    T: Into<Json>,
{
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .with("name", "tc")
            .with("n", 3u64)
            .with("neg", -4i64)
            .with("ok", true)
            .with("none", Json::Null)
            .with("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"tc","n":3,"neg":-4,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().with("a", Json::Arr(vec![Json::Int(1)]));
        assert_eq!(j.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_and_edge_numbers() {
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn try_set_refuses_non_objects_without_panicking() {
        let mut j = Json::Int(3);
        assert!(!j.try_set("k", 1u64));
        assert_eq!(j, Json::Int(3), "non-object receiver is left untouched");
        let mut arr = Json::Arr(vec![]);
        assert!(!arr.try_set("k", 1u64));
        assert_eq!(arr, Json::Arr(vec![]));
        let mut obj = Json::obj();
        assert!(obj.try_set("k", 1u64));
        assert_eq!(obj.get("k"), Some(&Json::UInt(1)));
    }

    #[test]
    fn get_looks_up_keys() {
        let j = Json::obj().with("k", 7u64);
        assert_eq!(j.get("k"), Some(&Json::UInt(7)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_string(), "{}");
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]");
    }
}

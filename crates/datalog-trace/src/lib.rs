//! # datalog-trace
//!
//! The observability layer of the workspace: typed, exportable records of
//! *where evaluation cost goes* and *what the optimizer did*.
//!
//! The paper's argument is quantitative — the §3.1 boolean cut retires
//! rules, §3.2 projection shrinks arities and duplicate-elimination cost,
//! §3.3/§5 deletion removes join work — so validating it requires
//! attributing cost to rules, predicates, and optimizer phases, not just a
//! global counter blob. This crate defines:
//!
//! * [`RuleProfile`] — per-rule counters (derivations, duplicates, scans,
//!   probes, wall time, and the iteration the boolean cut retired the
//!   rule), accumulated by `datalog-engine` when
//!   `EvalOptions::profile` is enabled;
//! * [`IterationProfile`] / [`PredDelta`] — the per-iteration timeline of
//!   predicate growth, for diagnosing convergence and explosions;
//! * [`EvalProfile`] — the two of those together, with ranked hot-rule and
//!   timeline text renderings;
//! * [`PhaseEvent`] — structured optimizer trace events recorded by
//!   `datalog-opt`'s pipeline phases;
//! * [`json::Json`] — a small self-contained JSON serializer every
//!   machine-readable surface shares (the environment is offline, so no
//!   serde);
//! * [`metrics`] — the always-on serving telemetry: a process-wide
//!   [`Registry`] of lock-free counters/gauges and log-linear latency
//!   [`Histogram`]s with Prometheus text exposition, threaded through the
//!   server, the WAL and the parallel evaluator (the `METRICS` verb).
//!
//! The crate deliberately depends on nothing: the engine and optimizer
//! depend on it, never the reverse.

pub mod json;
pub mod metrics;
pub mod phase;
pub mod profile;

pub use json::Json;
pub use metrics::{Counter, EvalHists, Gauge, Histogram, Registry};
pub use phase::{BoundClass, PhaseEvent};
pub use profile::{EvalProfile, IterationProfile, PredDelta, RuleProfile};

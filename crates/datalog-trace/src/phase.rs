//! Typed optimizer trace events.
//!
//! Each optimizer phase records *what changed* as data, not only as prose:
//! which predicate lost which arity (§3.2), which rule was deleted under
//! which sufficient condition (§3.3/§5), which boolean was extracted from
//! which rule (§3.1). Tools consume these events to answer "what did the
//! optimizer actually do and why" without parsing log strings.

use crate::json::Json;

/// How the static size-bound analysis classified a predicate's recursion.
///
/// Lives here (not in `datalog-lint`, which computes it) so the engine's
/// resident-admission policy can consume the classification without a
/// dependency cycle — lint depends on the engine, never the reverse.
/// Ordered from tightest to loosest: `Bounded < Linear < Polynomial <
/// Unbounded`, so "worst class in a program" is a plain `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundClass {
    /// Non-recursive: the bound is a fixed polynomial with no fixpoint.
    Bounded,
    /// Recursive, but every rule of the SCC uses at most one in-SCC
    /// literal (linear recursion — TC-like, bound stays polynomial of the
    /// same degree as the seed rules' active-domain closure).
    Linear,
    /// Nonlinear recursion with a certified polynomial bound (the
    /// active-domain closure of the head columns).
    Polynomial,
    /// The analysis declines to certify anything tighter than the trivial
    /// `adom^arity` fallback (e.g. recursion through a predicate whose
    /// column domains the analysis cannot trace). Policy surfaces treat
    /// this as "assume the worst".
    Unbounded,
}

impl BoundClass {
    /// Stable lowercase tag (wire format, JSON, diagnostics).
    pub fn as_str(self) -> &'static str {
        match self {
            BoundClass::Bounded => "bounded",
            BoundClass::Linear => "linear",
            BoundClass::Polynomial => "polynomial",
            BoundClass::Unbounded => "unbounded",
        }
    }

    /// Inverse of [`BoundClass::as_str`].
    pub fn parse(s: &str) -> Option<BoundClass> {
        match s {
            "bounded" => Some(BoundClass::Bounded),
            "linear" => Some(BoundClass::Linear),
            "polynomial" => Some(BoundClass::Polynomial),
            "unbounded" => Some(BoundClass::Unbounded),
            _ => None,
        }
    }
}

impl std::fmt::Display for BoundClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one optimizer action changed, as structured data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseEvent {
    /// §2 adornment ran.
    Adorned {
        /// Number of adorned predicate versions generated.
        versions: usize,
        /// Rule count of the adorned program.
        rules_after: usize,
    },
    /// §3.1: an existential subquery became a zero-arity boolean predicate.
    BooleanExtracted {
        /// Name of the new boolean predicate.
        boolean: String,
        /// The rule defining the boolean, rendered as text.
        definition: String,
    },
    /// §3.2: projection dropped argument positions of a predicate.
    ArityReduced {
        /// The predicate whose arity shrank.
        pred: String,
        /// Arity before.
        before: usize,
        /// Arity after.
        after: usize,
    },
    /// A rule was deleted; `condition` names the sufficient condition that
    /// justified it (Sagiv's uniform test, Lemma 5.1/5.3 summaries, the
    /// UQE freeze test, θ-subsumption, or a cleanup invariant).
    RuleDeleted {
        /// The deleted rule, rendered as text.
        rule: String,
        /// The sufficient condition used.
        condition: String,
    },
    /// A rule was rewritten in place.
    RuleRewritten {
        /// Rule before, rendered as text.
        before: String,
        /// Rule after, rendered as text.
        after: String,
    },
    /// §6 / Example 11: a folding introduced a new predicate.
    Folded {
        /// The newly introduced predicate.
        pred: String,
        /// The folded definition, rendered as text.
        definition: String,
    },
    /// §5: a unit rule was added via the `covers` relation.
    UnitRuleAdded {
        /// The added rule, rendered as text.
        rule: String,
    },
    /// The translation validator independently re-checked the run.
    TranslationValidated {
        /// Number of phase checks performed (rewrite phases, per-deletion
        /// justifications, replay consistency, differential oracle).
        checks: usize,
        /// Number of checks that failed (0 on a validated run).
        failures: usize,
    },
    /// A runtime resource limit tripped while serving a query: a deadline,
    /// a derived-fact budget, an iteration cap, admission-control shedding,
    /// or a cancellation. Emitted by the server so `STATS`/`TRACE` expose
    /// shed/timeout/recovery counts as structured data.
    LimitTripped {
        /// Stable limit kind: `deadline`, `budget`, `iterations`, `busy`,
        /// `shutdown`, or `panic`.
        kind: String,
        /// Human-readable context (partial stats, configured bound, ...).
        detail: String,
    },
    /// The static size-bound analysis ran over the optimized program and
    /// its verdict seeded planning (cost-ranked join hints) and admission.
    /// Recorded by `datalog_opt::prepare` so `validate` can re-run the
    /// analysis on the final snapshot and check the verdict is faithful.
    BoundsAnalyzed {
        /// The query predicate (adorned rendering, e.g. `a[nd]`).
        pred: String,
        /// Worst [`BoundClass`] across the predicates of the program.
        class: BoundClass,
        /// Symbolic bound of the query predicate, rendered (e.g.
        /// `|p|^2`), or `unbounded`.
        bound: String,
        /// Number of IDB predicates the analysis bounded.
        preds: usize,
    },
    /// Free-form note (phases with nothing structural to say).
    Note {
        /// The note.
        text: String,
    },
}

impl PhaseEvent {
    /// Stable kind tag used in JSON exports.
    pub fn kind(&self) -> &'static str {
        match self {
            PhaseEvent::Adorned { .. } => "adorned",
            PhaseEvent::BooleanExtracted { .. } => "boolean-extracted",
            PhaseEvent::ArityReduced { .. } => "arity-reduced",
            PhaseEvent::RuleDeleted { .. } => "rule-deleted",
            PhaseEvent::RuleRewritten { .. } => "rule-rewritten",
            PhaseEvent::Folded { .. } => "folded",
            PhaseEvent::UnitRuleAdded { .. } => "unit-rule-added",
            PhaseEvent::TranslationValidated { .. } => "translation-validated",
            PhaseEvent::LimitTripped { .. } => "limit-tripped",
            PhaseEvent::BoundsAnalyzed { .. } => "bounds-analyzed",
            PhaseEvent::Note { .. } => "note",
        }
    }

    /// JSON object for export (always carries a `"type"` tag).
    pub fn to_json(&self) -> Json {
        let j = Json::obj().with("type", self.kind());
        match self {
            PhaseEvent::Adorned {
                versions,
                rules_after,
            } => j
                .with("versions", *versions)
                .with("rules_after", *rules_after),
            PhaseEvent::BooleanExtracted {
                boolean,
                definition,
            } => j
                .with("boolean", boolean.as_str())
                .with("definition", definition.as_str()),
            PhaseEvent::ArityReduced {
                pred,
                before,
                after,
            } => j
                .with("pred", pred.as_str())
                .with("before", *before)
                .with("after", *after),
            PhaseEvent::RuleDeleted { rule, condition } => j
                .with("rule", rule.as_str())
                .with("condition", condition.as_str()),
            PhaseEvent::RuleRewritten { before, after } => j
                .with("before", before.as_str())
                .with("after", after.as_str()),
            PhaseEvent::Folded { pred, definition } => j
                .with("pred", pred.as_str())
                .with("definition", definition.as_str()),
            PhaseEvent::UnitRuleAdded { rule } => j.with("rule", rule.as_str()),
            PhaseEvent::TranslationValidated { checks, failures } => {
                j.with("checks", *checks).with("failures", *failures)
            }
            PhaseEvent::LimitTripped { kind, detail } => j
                .with("kind", kind.as_str())
                .with("detail", detail.as_str()),
            PhaseEvent::BoundsAnalyzed {
                pred,
                class,
                bound,
                preds,
            } => j
                .with("pred", pred.as_str())
                .with("class", class.as_str())
                .with("bound", bound.as_str())
                .with("preds", *preds),
            PhaseEvent::Note { text } => j.with("text", text.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_tags() {
        assert_eq!(
            PhaseEvent::ArityReduced {
                pred: "a[nd]".into(),
                before: 2,
                after: 1
            }
            .kind(),
            "arity-reduced"
        );
        assert_eq!(PhaseEvent::Note { text: "x".into() }.kind(), "note");
        assert_eq!(
            PhaseEvent::LimitTripped {
                kind: "deadline".into(),
                detail: "50ms".into()
            }
            .kind(),
            "limit-tripped"
        );
    }

    #[test]
    fn limit_tripped_json_carries_kind_and_detail() {
        let e = PhaseEvent::LimitTripped {
            kind: "budget".into(),
            detail: "100 derived facts".into(),
        };
        let s = e.to_json().to_string();
        assert!(s.contains("\"type\":\"limit-tripped\""), "{s}");
        assert!(s.contains("\"kind\":\"budget\""), "{s}");
        assert!(s.contains("\"detail\":\"100 derived facts\""), "{s}");
    }

    #[test]
    fn bound_class_round_trips_and_orders() {
        for c in [
            BoundClass::Bounded,
            BoundClass::Linear,
            BoundClass::Polynomial,
            BoundClass::Unbounded,
        ] {
            assert_eq!(BoundClass::parse(c.as_str()), Some(c));
        }
        assert!(BoundClass::Bounded < BoundClass::Linear);
        assert!(BoundClass::Polynomial < BoundClass::Unbounded);
        assert_eq!(BoundClass::parse("wild"), None);
        let e = PhaseEvent::BoundsAnalyzed {
            pred: "a[nd]".into(),
            class: BoundClass::Linear,
            bound: "|p|^2".into(),
            preds: 2,
        };
        assert_eq!(e.kind(), "bounds-analyzed");
        let s = e.to_json().to_string();
        assert!(s.contains("\"class\":\"linear\""), "{s}");
        assert!(s.contains("\"bound\":\"|p|^2\""), "{s}");
    }

    #[test]
    fn json_carries_type_and_payload() {
        let e = PhaseEvent::RuleDeleted {
            rule: "a(X, Y) :- p(X, Z), a(Z, Y).".into(),
            condition: "Sagiv uniform test".into(),
        };
        let s = e.to_json().to_string();
        assert!(s.contains("\"type\":\"rule-deleted\""));
        assert!(s.contains("\"condition\":\"Sagiv uniform test\""));
    }
}

#!/usr/bin/env sh
# Full local gate: release build, tests, lints, formatting.
# Offline-safe: the workspace vendors its few dev-dependencies, so no
# network or registry access is needed.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Static analysis gate: every example program must lint without errors
# (warnings are fine — singleton variables are idiomatic in existential
# queries), and every optimization run on them must survive translation
# validation with zero unjustified deletions.
./target/release/xdl lint examples/data/*.dl
./target/release/xdl verify-opt examples/data/*.dl > /dev/null
echo "check.sh: lint + verify-opt ok"

# The intentionally-broken fixtures must keep failing loudly (exit 1).
if ./target/release/xdl lint tests/lint/unsafe_rule.dl tests/lint/dead_code.dl \
    > /dev/null 2>&1; then
    echo "check.sh: broken lint fixtures did not fail" >&2
    exit 1
fi
echo "check.sh: broken fixtures still caught"

# Server smoke: serve on an ephemeral port, answer one query byte-identically
# to `xdl run`, shut down cleanly.
smoke_dir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$smoke_dir"
}
trap cleanup EXIT
printf 'a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\np(1, 2).\np(2, 3).\n' \
    > "$smoke_dir/tc.dl"
{ cat "$smoke_dir/tc.dl"; printf '?- a(X, _).\n'; } > "$smoke_dir/run.dl"

./target/release/xdl serve --port 0 --threads 2 > "$smoke_dir/serve.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: server did not announce its address" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" --load "$smoke_dir/tc.dl" \
    '?- a(X, _).' > "$smoke_dir/served.out"
./target/release/xdl run "$smoke_dir/run.dl" > "$smoke_dir/ran.out"
if ! cmp -s "$smoke_dir/served.out" "$smoke_dir/ran.out"; then
    echo "check.sh: served answer differs from xdl run:" >&2
    diff "$smoke_dir/served.out" "$smoke_dir/ran.out" >&2 || true
    exit 1
fi
./target/release/xdl query --connect "$addr" --shutdown
wait "$serve_pid"
serve_pid=""
echo "check.sh: server smoke ok"

echo "check.sh: all green"

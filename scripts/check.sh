#!/usr/bin/env sh
# Full local gate: release build, tests, lints, formatting.
# Offline-safe: the workspace vendors its few dev-dependencies, so no
# network or registry access is needed.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Static analysis gate: every example program must lint without errors
# (warnings are fine — singleton variables are idiomatic in existential
# queries), and every optimization run on them must survive translation
# validation with zero unjustified deletions.
./target/release/xdl lint examples/data/*.dl
./target/release/xdl verify-opt examples/data/*.dl > /dev/null
echo "check.sh: lint + verify-opt ok"

# The intentionally-broken fixtures must keep failing loudly (exit 1).
if ./target/release/xdl lint tests/lint/unsafe_rule.dl tests/lint/dead_code.dl \
    > /dev/null 2>&1; then
    echo "check.sh: broken lint fixtures did not fail" >&2
    exit 1
fi
echo "check.sh: broken fixtures still caught"

# Derivation-bound gate: the examples must stay warning-free even with
# the bound lints made binding, and the bounds table must render for
# each of them.
./target/release/xdl lint examples/data/*.dl --bounds --deny-warnings > /dev/null
# The bound fixtures are warning-only: advisory by default, fatal under
# --deny-warnings.
./target/release/xdl lint tests/lint/cartesian.dl tests/lint/unbounded.dl \
    > /dev/null
if ./target/release/xdl lint tests/lint/cartesian.dl tests/lint/unbounded.dl \
    --deny-warnings > /dev/null 2>&1; then
    echo "check.sh: bound fixtures did not fail under --deny-warnings" >&2
    exit 1
fi
echo "check.sh: derivation-bound gate ok"

# Server smoke: serve on an ephemeral port, answer one query byte-identically
# to `xdl run`, shut down cleanly.
smoke_dir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$smoke_dir"
}
trap cleanup EXIT
printf 'a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\np(1, 2).\np(2, 3).\n' \
    > "$smoke_dir/tc.dl"
{ cat "$smoke_dir/tc.dl"; printf '?- a(X, _).\n'; } > "$smoke_dir/run.dl"

./target/release/xdl serve --port 0 --threads 2 > "$smoke_dir/serve.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: server did not announce its address" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" --load "$smoke_dir/tc.dl" \
    '?- a(X, _).' > "$smoke_dir/served.out"
./target/release/xdl run "$smoke_dir/run.dl" > "$smoke_dir/ran.out"
if ! cmp -s "$smoke_dir/served.out" "$smoke_dir/ran.out"; then
    echo "check.sh: served answer differs from xdl run:" >&2
    diff "$smoke_dir/served.out" "$smoke_dir/ran.out" >&2 || true
    exit 1
fi
# Telemetry smoke: scrape METRICS off the live server and sanity-check
# the Prometheus exposition (the full format parser runs in the metrics
# test suite below; this catches a server that stopped announcing).
./target/release/xdl metrics --connect "$addr" > "$smoke_dir/metrics.out"
if ! grep -q '^# TYPE xdl_requests_total counter' "$smoke_dir/metrics.out" \
    || ! grep -q '^xdl_requests_total{verb="QUERY"} 1$' "$smoke_dir/metrics.out" \
    || ! grep -q '^# TYPE xdl_request_seconds histogram' "$smoke_dir/metrics.out"; then
    echo "check.sh: METRICS scrape is not the expected Prometheus exposition:" >&2
    head -20 "$smoke_dir/metrics.out" >&2
    exit 1
fi
./target/release/xdl metrics --connect "$addr" --json > "$smoke_dir/metrics.json"
if ! grep -q '"xdl_requests_total"' "$smoke_dir/metrics.json"; then
    echo "check.sh: METRICS JSON readout missing families" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" --shutdown
wait "$serve_pid"
serve_pid=""
echo "check.sh: server smoke ok (incl. METRICS scrape)"

# Telemetry suite: the Prometheus text-format parser, histogram
# invariants, counter monotonicity across scrapes, and the strict JSON
# checks over METRICS/STATS/TRACE.
cargo test -q -p datalog-server --test metrics > /dev/null
echo "check.sh: telemetry suite ok"

# Fault suite: the injection harness (fsync failure, torn WAL tail, panic
# isolation, deadline storm, slow client, budget, shedding, drain) must
# pass against the release-profile server crate — with parallel evaluation
# on (XDL_EVAL_THREADS feeds ServerConfig::default), so limits, panics and
# recovery are exercised under the threaded fixpoint too.
XDL_EVAL_THREADS=4 cargo test -q -p datalog-server --test faults > /dev/null
echo "check.sh: fault suite ok (eval_threads=4)"

# Best-effort ThreadSanitizer arm over the parallel-evaluation tests.
# -Zsanitizer is nightly-only and needs rust-src for -Zbuild-std; on a
# stable-only toolchain this is skipped with a notice rather than failed,
# so the gate stays runnable offline.
if command -v rustup > /dev/null 2>&1 \
    && rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src (installed)'; then
    tsan_host=$(rustc -vV | sed -n 's/^host: //p')
    RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -q -Zbuild-std --target "$tsan_host" \
        -p datalog-engine --lib > /dev/null
    echo "check.sh: ThreadSanitizer arm ok ($tsan_host)"
else
    echo "check.sh: ThreadSanitizer arm skipped (needs nightly toolchain + rust-src)"
fi

# Resource-limit smoke: a budget-limited run fails with a structured
# message carrying partial stats, instead of succeeding or hanging.
if ./target/release/xdl run "$smoke_dir/run.dl" --budget 1 > /dev/null 2> "$smoke_dir/limit.err"; then
    echo "check.sh: budget-limited run did not fail" >&2
    exit 1
fi
if ! grep -q 'budget' "$smoke_dir/limit.err" || ! grep -q 'partial:' "$smoke_dir/limit.err"; then
    echo "check.sh: limit error lacks structure:" >&2
    cat "$smoke_dir/limit.err" >&2
    exit 1
fi
echo "check.sh: resource-limit smoke ok"

# Scaling smoke: parallel evaluation must be byte-identical to serial —
# the answers and the full stats partition, not just the answer set.
./target/release/xdl run "$smoke_dir/run.dl" --stats --threads 1 \
    > "$smoke_dir/threads1.out" 2>&1
./target/release/xdl run "$smoke_dir/run.dl" --stats --threads 4 \
    > "$smoke_dir/threads4.out" 2>&1
if ! cmp -s "$smoke_dir/threads1.out" "$smoke_dir/threads4.out"; then
    echo "check.sh: --threads 4 output differs from serial:" >&2
    diff "$smoke_dir/threads1.out" "$smoke_dir/threads4.out" >&2 || true
    exit 1
fi
echo "check.sh: scaling smoke ok"

# Scaling experiment: record a quick E12 run so BENCH history accumulates
# alongside the committed full-mode BENCH_e12.json.
mkdir -p bench_history
./target/release/harness e12 --quick --json \
    > "bench_history/e12-$(date +%s).json"
echo "check.sh: e12 recorded ($(ls bench_history | wc -l) history entries)"

# Telemetry overhead experiment: record a quick E13 run (metrics on vs
# no-op registry) alongside the committed full-mode BENCH_e13.json.
./target/release/harness e13 --quick --json \
    > "bench_history/e13-$(date +%s).json"
echo "check.sh: e13 recorded ($(ls bench_history | wc -l) history entries)"

# Incremental-serving smoke: ingest after a warm query, then demand the
# resident-frontier answer is byte-identical to a server with residency
# disabled (--resident-forms 0 forces invalidate-and-recompute).
for forms in 8 0; do
    ./target/release/xdl serve --port 0 --threads 2 --resident-forms "$forms" \
        > "$smoke_dir/serve-inc$forms.out" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve-inc$forms.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "check.sh: incremental smoke server ($forms) did not announce" >&2
        exit 1
    fi
    ./target/release/xdl query --connect "$addr" --load "$smoke_dir/tc.dl" \
        '?- a(X, _).' > /dev/null
    ./target/release/xdl query --connect "$addr" --fact 'p(3, 4).' \
        --fact 'p(4, 5).' '?- a(X, _).' > "$smoke_dir/inc$forms.out"
    ./target/release/xdl query --connect "$addr" --shutdown
    wait "$serve_pid"
    serve_pid=""
done
if ! cmp -s "$smoke_dir/inc8.out" "$smoke_dir/inc0.out"; then
    echo "check.sh: resident frontier differs from invalidate-recompute:" >&2
    diff "$smoke_dir/inc8.out" "$smoke_dir/inc0.out" >&2 || true
    exit 1
fi
echo "check.sh: incremental serving smoke ok"

# Incremental serving experiment: record a quick E14 run (resident delta
# propagation vs invalidate-recompute) alongside the committed full-mode
# BENCH_e14.json.
./target/release/harness e14 --quick --json \
    > "bench_history/e14-$(date +%s).json"
echo "check.sh: e14 recorded ($(ls bench_history | wc -l) history entries)"

# Bounded-staleness smoke: with every drain deferred (--drain-sync-cost 0)
# a relaxed read (--any / --staleness 50) still answers off the published
# frontier, and a fresh read catches up to byte-identity with `xdl run`.
./target/release/xdl serve --port 0 --threads 2 --drain-sync-cost 0 \
    > "$smoke_dir/serve-stale.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve-stale.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: staleness smoke server did not announce" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" --load "$smoke_dir/tc.dl" \
    '?- a(X, _).' > /dev/null
./target/release/xdl query --connect "$addr" --fact 'p(3, 4).' --any \
    '?- a(X, _).' > "$smoke_dir/stale-any.out"
./target/release/xdl query --connect "$addr" --staleness 50 '?- a(X, _).' \
    > "$smoke_dir/stale-bounded.out"
for f in stale-any stale-bounded; do
    if ! grep -q '^X$' "$smoke_dir/$f.out"; then
        echo "check.sh: relaxed read ($f) did not answer:" >&2
        cat "$smoke_dir/$f.out" >&2
        exit 1
    fi
done
{ cat "$smoke_dir/tc.dl"; printf 'p(3, 4).\n?- a(X, _).\n'; } \
    > "$smoke_dir/run-stale.dl"
./target/release/xdl run "$smoke_dir/run-stale.dl" > "$smoke_dir/ran-stale.out"
./target/release/xdl query --connect "$addr" '?- a(X, _).' \
    > "$smoke_dir/fresh-stale.out"
if ! cmp -s "$smoke_dir/fresh-stale.out" "$smoke_dir/ran-stale.out"; then
    echo "check.sh: fresh read after deferred drains differs from xdl run:" >&2
    diff "$smoke_dir/fresh-stale.out" "$smoke_dir/ran-stale.out" >&2 || true
    exit 1
fi
./target/release/xdl query --connect "$addr" --shutdown
wait "$serve_pid"
serve_pid=""
echo "check.sh: bounded-staleness smoke ok"

# Bounded-staleness experiment: record a quick E15 run (recompute baseline
# vs synchronous fresh vs staleness=50 under a FACT flood) alongside the
# committed full-mode BENCH_e15.json.
./target/release/harness e15 --quick --json \
    > "bench_history/e15-$(date +%s).json"
echo "check.sh: e15 recorded ($(ls bench_history | wc -l) history entries)"

# Crash-recovery smoke: ingest through a WAL-backed server, SIGKILL it
# (no shutdown, no flush), restart on the same WAL directory, and demand
# byte-identical query output.
./target/release/xdl serve --port 0 --threads 2 --wal "$smoke_dir/wal" \
    > "$smoke_dir/serve2.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve2.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: WAL server did not announce its address" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" --load "$smoke_dir/tc.dl" \
    --fact 'p(3, 4).' '?- a(X, _).' > "$smoke_dir/before-crash.out"
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

./target/release/xdl serve --port 0 --threads 2 --wal "$smoke_dir/wal" \
    > "$smoke_dir/serve3.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve3.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: restarted WAL server did not announce its address" >&2
    exit 1
fi
if ! grep -q '^recovered ' "$smoke_dir/serve3.out"; then
    echo "check.sh: restarted server reported no recovery" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" '?- a(X, _).' \
    > "$smoke_dir/after-crash.out"
if ! cmp -s "$smoke_dir/before-crash.out" "$smoke_dir/after-crash.out"; then
    echo "check.sh: answers differ across SIGKILL + recovery:" >&2
    diff "$smoke_dir/before-crash.out" "$smoke_dir/after-crash.out" >&2 || true
    exit 1
fi
./target/release/xdl query --connect "$addr" --shutdown
wait "$serve_pid"
serve_pid=""
echo "check.sh: crash-recovery smoke ok"

# Manifest-recovery smoke: same SIGKILL discipline, but with compaction
# enabled (--compact-every 4) so the surviving WAL directory holds a
# run-file manifest instead of a pure text log. The restart must load the
# run batches (a `recovered` line with nonzero run_files) and answer
# byte-identically.
./target/release/xdl serve --port 0 --threads 2 --wal "$smoke_dir/wal-man" \
    --compact-every 4 > "$smoke_dir/serve-man.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve-man.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: manifest WAL server did not announce its address" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" --load "$smoke_dir/tc.dl" \
    --fact 'p(3, 4).' --fact 'p(4, 5).' --fact 'p(5, 6).' '?- a(X, _).' \
    > "$smoke_dir/before-man.out"
if [ ! -f "$smoke_dir/wal-man/snapshot.manifest" ]; then
    echo "check.sh: compaction left no snapshot.manifest" >&2
    ls "$smoke_dir/wal-man" >&2 || true
    exit 1
fi
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

./target/release/xdl serve --port 0 --threads 2 --wal "$smoke_dir/wal-man" \
    --compact-every 4 > "$smoke_dir/serve-man2.out" &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve-man2.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "check.sh: restarted manifest server did not announce its address" >&2
    exit 1
fi
if ! grep -q '^recovered ' "$smoke_dir/serve-man2.out" \
    || ! grep -Eq '"run_files":[1-9]' "$smoke_dir/serve-man2.out"; then
    echo "check.sh: restart did not recover from run files:" >&2
    cat "$smoke_dir/serve-man2.out" >&2
    exit 1
fi
./target/release/xdl query --connect "$addr" '?- a(X, _).' \
    > "$smoke_dir/after-man.out"
if ! cmp -s "$smoke_dir/before-man.out" "$smoke_dir/after-man.out"; then
    echo "check.sh: answers differ across SIGKILL + manifest recovery:" >&2
    diff "$smoke_dir/before-man.out" "$smoke_dir/after-man.out" >&2 || true
    exit 1
fi
./target/release/xdl query --connect "$addr" --shutdown
wait "$serve_pid"
serve_pid=""
echo "check.sh: manifest-recovery smoke ok"

# Storage experiment: record a quick E16 run (legacy postings vs sorted
# runs on ingest / cold probes / crash recovery) alongside the committed
# full-mode BENCH_e16.json.
./target/release/harness e16 --quick --json \
    > "bench_history/e16-$(date +%s).json"
echo "check.sh: e16 recorded ($(ls bench_history | wc -l) history entries)"

# Parallel-host re-record: committed scaling numbers measured on a 1-core
# host say nothing about parallel speedup (the exported host_parallelism
# field marks the provenance; files recorded before the field count as
# 1-core). On a multi-core host, refresh the full E12 record once.
cores=$( (nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null) || echo 1 )
if [ "${cores:-1}" -gt 1 ] \
    && ! grep -Eq '"host_parallelism": *([2-9]|[0-9]{2,})' BENCH_e12.json; then
    ./target/release/harness e12 --json > BENCH_e12.json
    echo "check.sh: BENCH_e12.json re-recorded on a ${cores}-core host"
else
    echo "check.sh: BENCH_e12.json re-record not needed (cores=$cores)"
fi

echo "check.sh: all green"

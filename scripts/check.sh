#!/usr/bin/env sh
# Full local gate: release build, tests, lints, formatting.
# Offline-safe: the workspace vendors its few dev-dependencies, so no
# network or registry access is needed.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check

echo "check.sh: all green"

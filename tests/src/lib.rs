//! Support code for the cross-crate integration tests: proptest strategies
//! that generate random *safe* Datalog programs and random instances.

use proptest::prelude::*;

use datalog_ast::{Atom, PredRef, Program, Query, Rule, Term, Value, Var};
use datalog_engine::FactSet;

/// Schema used by the generators: predicate name + arity.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Derived predicates.
    pub idb: Vec<(String, usize)>,
    /// Base predicates.
    pub edb: Vec<(String, usize)>,
}

impl Schema {
    /// A small default schema.
    pub fn small() -> Schema {
        Schema {
            idb: vec![("q".into(), 2), ("r".into(), 1)],
            edb: vec![("e".into(), 2), ("f".into(), 1), ("g".into(), 3)],
        }
    }

    fn all(&self) -> Vec<(String, usize, bool)> {
        self.idb
            .iter()
            .map(|(n, a)| (n.clone(), *a, true))
            .chain(self.edb.iter().map(|(n, a)| (n.clone(), *a, false)))
            .collect()
    }
}

const VAR_POOL: [&str; 6] = ["X", "Y", "Z", "U", "V", "W"];

/// Strategy: one rule with head predicate `head_idx` of the schema.
/// Safety is ensured by construction: head variables are drawn from the
/// variables that occur in the generated body.
fn rule_strategy(schema: Schema, head_idx: usize) -> impl Strategy<Value = Rule> {
    let preds = schema.all();
    let (head_name, head_arity) = (schema.idb[head_idx].0.clone(), schema.idb[head_idx].1);
    // Body: 1..=3 literals, each a predicate with variable picks.
    let lit = (
        0..preds.len(),
        proptest::collection::vec(0..VAR_POOL.len(), 0..4),
    );
    proptest::collection::vec(lit, 1..=3).prop_flat_map(move |body_spec| {
        let preds = preds.clone();
        let head_name = head_name.clone();
        let mut body: Vec<Atom> = Vec::new();
        let mut body_vars: Vec<Var> = Vec::new();
        for (pi, var_picks) in body_spec {
            let (name, arity, _derived) = &preds[pi];
            let terms: Vec<Term> = (0..*arity)
                .map(|k| {
                    let pick = var_picks.get(k).copied().unwrap_or(k % VAR_POOL.len());
                    let v = Var::new(VAR_POOL[pick % VAR_POOL.len()]);
                    Term::Var(v)
                })
                .collect();
            for t in &terms {
                if let Term::Var(v) = t {
                    if !body_vars.contains(v) {
                        body_vars.push(*v);
                    }
                }
            }
            body.push(Atom::new(PredRef::new(name), terms));
        }
        // Head: draw each argument from the body variables.
        let nvars = body_vars.len().max(1);
        proptest::collection::vec(0..nvars, head_arity).prop_map(move |head_picks| {
            let head_terms: Vec<Term> = head_picks
                .iter()
                .map(|&i| Term::Var(body_vars[i % body_vars.len()]))
                .collect();
            Rule::new(
                Atom::new(PredRef::new(&head_name), head_terms),
                body.clone(),
            )
        })
    })
}

/// Strategy: a whole random safe program over [`Schema::small`], with a
/// query on `q` whose second position may be existential.
pub fn program_strategy() -> impl Strategy<Value = Program> {
    let schema = Schema::small();
    let rules_q = proptest::collection::vec(rule_strategy(schema.clone(), 0), 1..=3);
    let rules_r = proptest::collection::vec(rule_strategy(schema.clone(), 1), 0..=2);
    (rules_q, rules_r, proptest::bool::ANY).prop_map(|(a, b, existential)| {
        let mut rules = a;
        rules.extend(b);
        let query_atom = if existential {
            Atom::new(
                PredRef::new("q"),
                vec![Term::Var(Var::new("X")), Term::Var(Var::fresh_wildcard())],
            )
        } else {
            Atom::new(
                PredRef::new("q"),
                vec![Term::Var(Var::new("X")), Term::Var(Var::new("Y"))],
            )
        };
        Program {
            rules,
            query: Some(Query::new(query_atom)),
        }
    })
}

/// Strategy: a random instance for the schema's EDB predicates over the
/// integer domain `0..domain`.
pub fn instance_strategy(domain: i64, max_facts: usize) -> impl Strategy<Value = FactSet> {
    let schema = Schema::small();
    let fact = (0..schema.edb.len(), proptest::collection::vec(0..domain, 3));
    proptest::collection::vec(fact, 0..max_facts).prop_map(move |facts| {
        let mut fs = FactSet::new();
        for (pi, vals) in facts {
            let (name, arity) = &schema.edb[pi];
            let tuple: Vec<Value> = (0..*arity).map(|k| Value::Int(vals[k])).collect();
            fs.insert(PredRef::new(name), tuple);
        }
        fs
    })
}

/// Strategy: a random right-linear chain grammar as a program
/// (`a -> t a | t` shapes with up to three terminals and two nonterminals).
pub fn right_linear_chain_strategy() -> impl Strategy<Value = Program> {
    // Each production: (lhs in {s, t1}, terminals 1..=2, optional nt tail)
    let prod = (
        0..2usize,
        proptest::collection::vec(0..3usize, 1..=2),
        proptest::option::of(0..2usize),
    );
    proptest::collection::vec(prod, 1..=4).prop_map(|prods| {
        let nts = ["s", "t1"];
        let ts = ["ea", "eb", "ec"];
        let mut rules = Vec::new();
        let mut has_exit = [false, false];
        for (lhs, terms, tail) in &prods {
            if tail.is_none() {
                has_exit[*lhs] = true;
            }
            rules.push(make_chain_rule(
                nts[*lhs],
                &terms.iter().map(|&t| ts[t]).collect::<Vec<_>>(),
                tail.map(|t| nts[t]),
            ));
        }
        // Guarantee productivity: give every used nonterminal an exit rule.
        for (i, nt) in nts.iter().enumerate() {
            if !has_exit[i] {
                rules.push(make_chain_rule(nt, &["ea"], None));
            }
        }
        let mut p = Program::new(rules);
        p.query = Some(Query::new(Atom::new(
            PredRef::new("s"),
            vec![Term::Var(Var::new("X")), Term::Var(Var::new("Y"))],
        )));
        p
    })
}

fn make_chain_rule(head: &str, terminals: &[&str], tail: Option<&str>) -> Rule {
    let n = terminals.len() + usize::from(tail.is_some());
    let var_at = |i: usize| -> Term {
        if i == 0 {
            Term::Var(Var::new("X"))
        } else if i == n {
            Term::Var(Var::new("Y"))
        } else {
            Term::Var(Var::new(&format!("C{i}")))
        }
    };
    let mut body = Vec::new();
    for (i, t) in terminals.iter().enumerate() {
        body.push(Atom::new(PredRef::new(t), vec![var_at(i), var_at(i + 1)]));
    }
    if let Some(nt) = tail {
        body.push(Atom::new(
            PredRef::new(nt),
            vec![var_at(terminals.len()), var_at(n)],
        ));
    }
    Rule::new(
        Atom::new(PredRef::new(head), vec![var_at(0), var_at(n)]),
        body,
    )
}

#[cfg(test)]
mod smoke {
    use super::*;
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;

    #[test]
    fn strategies_produce_valid_programs() {
        let mut runner = TestRunner::default();
        for _ in 0..50 {
            let p = program_strategy().new_tree(&mut runner).unwrap().current();
            p.validate().expect("generated program must be safe");
        }
        for _ in 0..50 {
            let p = right_linear_chain_strategy()
                .new_tree(&mut runner)
                .unwrap()
                .current();
            p.validate().expect("generated chain program must be safe");
            assert!(datalog_grammar::is_chain_program(&p));
        }
    }
}

//! Engine-level properties on random programs and instances: strategy
//! agreement, cut transparency, magic-sets equivalence, optimistic
//! monotonicity.

use proptest::prelude::*;

use datalog_engine::optimistic::{optimistic_fixpoint, Grounding};
use datalog_engine::{evaluate, query_answers, EvalOptions, Strategy};
use xdl_integration_tests::{instance_strategy, program_strategy};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Naive and semi-naive compute the same least fixpoint.
    #[test]
    fn naive_equals_seminaive(
        program in program_strategy(),
        instance in instance_strategy(4, 18),
    ) {
        let naive = evaluate(&program, &instance, &EvalOptions {
            strategy: Strategy::Naive,
            ..EvalOptions::default()
        }).unwrap();
        let semi = evaluate(&program, &instance, &EvalOptions::default()).unwrap();
        prop_assert_eq!(naive.database.dump(), semi.database.dump(),
            "program:\n{}", program.to_text());
    }

    /// The boolean-cut runtime never changes the query's answers.
    #[test]
    fn boolean_cut_is_transparent(
        program in program_strategy(),
        instance in instance_strategy(4, 18),
    ) {
        let (plain, _) = query_answers(&program, &instance, &EvalOptions::default()).unwrap();
        let (cut, _) = query_answers(&program, &instance, &EvalOptions {
            boolean_cut: true,
            ..EvalOptions::default()
        }).unwrap();
        prop_assert_eq!(plain.rows, cut.rows, "program:\n{}", program.to_text());
    }

    /// Magic sets with a bound query constant preserves the answers.
    #[test]
    fn magic_preserves_answers(
        program in program_strategy(),
        instance in instance_strategy(4, 18),
        bound in 0..4i64,
    ) {
        // Bind the first query argument to a constant.
        let mut bound_program = program.clone();
        let q = bound_program.query.as_mut().unwrap();
        q.atom.terms[0] = datalog_ast::Term::Const(datalog_ast::Value::Int(bound));
        match datalog_magic::magic_rewrite(&bound_program) {
            Ok(m) => {
                let (orig, _) =
                    query_answers(&bound_program, &instance, &EvalOptions::default()).unwrap();
                let (magic, _) =
                    query_answers(&m.program, &instance, &EvalOptions::default()).unwrap();
                prop_assert_eq!(orig.rows, magic.rows,
                    "program:\n{}\nmagic:\n{}", bound_program.to_text(), m.program.to_text());
            }
            Err(e) => prop_assert!(false, "magic refused a bound query: {e}"),
        }
    }

    /// Optimistic derivation over-approximates the real fixpoint (under the
    /// liberal active-domain grounding) and is monotone in the grounding.
    #[test]
    fn optimistic_overapproximates(
        program in program_strategy(),
        instance in instance_strategy(3, 12),
    ) {
        let real = evaluate(&program, &instance, &EvalOptions::default()).unwrap()
            .database.dump();
        let liberal = optimistic_fixpoint(&program, &instance, Grounding::ActiveDomain);
        let strict = optimistic_fixpoint(&program, &instance, Grounding::KnownOnly);
        for (p, t) in real.iter() {
            prop_assert!(liberal.contains(p, t),
                "real fact {p}{t:?} missing from liberal optimistic set");
        }
        for (p, t) in strict.iter() {
            prop_assert!(liberal.contains(p, t),
                "strict fact {p}{t:?} missing from liberal optimistic set");
        }
    }

    /// Greedy join reordering never changes the fixpoint.
    #[test]
    fn join_reordering_is_transparent(
        program in program_strategy(),
        instance in instance_strategy(4, 18),
    ) {
        let plain = evaluate(&program, &instance, &EvalOptions::default()).unwrap();
        let reordered = evaluate(&program, &instance, &EvalOptions {
            reorder_joins: true,
            ..EvalOptions::default()
        }).unwrap();
        prop_assert_eq!(plain.database.dump(), reordered.database.dump(),
            "program:\n{}", program.to_text());
    }

    /// Evaluation is deterministic.
    #[test]
    fn evaluation_is_deterministic(
        program in program_strategy(),
        instance in instance_strategy(4, 18),
    ) {
        let a = evaluate(&program, &instance, &EvalOptions::default()).unwrap();
        let b = evaluate(&program, &instance, &EvalOptions::default()).unwrap();
        prop_assert_eq!(a.database.dump(), b.database.dump());
        prop_assert_eq!(a.stats, b.stats);
    }
}

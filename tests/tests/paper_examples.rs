//! End-to-end reproduction of the paper's worked examples: each example is
//! pushed through the full optimizer pipeline, the paper's claimed outcome
//! is asserted, and answer preservation is checked on random instances.

use datalog_ast::parse_program;
use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};
use datalog_opt::{optimize, paper, OptimizerConfig, Phase};

fn assert_equivalent(original: &datalog_ast::Program, optimized: &datalog_ast::Program) {
    let cfg = EquivCheckConfig {
        instances: 40,
        ..EquivCheckConfig::default()
    };
    let w = bounded_equiv_check(original, optimized, &cfg).unwrap();
    assert!(
        w.is_none(),
        "optimization changed answers: {w:?}\noptimized:\n{}",
        optimized.to_text()
    );
}

#[test]
fn every_catalog_example_optimizes_and_preserves_answers() {
    for e in paper::catalog() {
        let program = parse_program(e.text).unwrap().program;
        let out = optimize(&program, &OptimizerConfig::default())
            .unwrap_or_else(|err| panic!("{} failed to optimize: {err}", e.name));
        assert_equivalent(&program, &out.program);
        assert!(
            out.report.rules_after <= out.report.rules_before.max(out.program.rules.len()),
            "{}: rule count grew unexpectedly",
            e.name
        );
    }
}

/// Example 1 → 3 → 4: adornment, projection to unary, recursion deleted.
#[test]
fn example_1_chain_reaches_example_4_outcome() {
    let program = parse_program(paper::EXAMPLE_1).unwrap().program;
    let out = optimize(&program, &OptimizerConfig::default()).unwrap();
    assert!(!out.program.is_recursive());
    let text = out.program.to_text();
    assert!(text.contains("a[nd](X) :- p(X,"), "{text}");
    // The recursive predicate became unary.
    for rule in &out.program.rules {
        if rule.head.pred.name.as_str() == "a" {
            assert_eq!(rule.head.arity(), 1);
        }
    }
}

/// Example 2: boolean extraction splits off both existential subqueries.
#[test]
fn example_2_boolean_extraction() {
    let program = parse_program(paper::EXAMPLE_2).unwrap().program;
    let out = optimize(&program, &OptimizerConfig::default()).unwrap();
    let text = out.program.to_text();
    let booleans = out
        .report
        .actions
        .iter()
        .filter(|a| a.phase == Phase::Components)
        .count();
    assert_eq!(booleans, 2, "{text}");
    assert!(text.contains("q3(_, V), q4[n](V)"), "{text}");
    // The head lost its existential argument to projection.
    assert!(text.contains("p[nd](X) :-"), "{text}");
}

/// Example 5 vs Example 6: uniform-only optimization keeps the recursion,
/// the full pipeline removes it.
#[test]
fn example_5_vs_6_contrast() {
    let program = parse_program(paper::EXAMPLE_5).unwrap().program;
    let mut uniform_only = OptimizerConfig::default();
    uniform_only.freeze.uqe = false;
    uniform_only.summary.add_cover_unit_rules = false;
    let stuck = optimize(&program, &uniform_only).unwrap();
    assert_eq!(stuck.program.rules.len(), 4, "{}", stuck.program.to_text());

    let full = optimize(&program, &OptimizerConfig::default()).unwrap();
    let expected = parse_program(paper::EXAMPLE_6_OPTIMIZED).unwrap().program;
    assert_eq!(full.program, expected, "{}", full.program.to_text());
}

/// Example 7: the program reduces to exactly the paper's three rules, and
/// the summary-invisible residual redundancy is picked up by Sagiv's test
/// if the freeze phase is allowed to run (the paper notes the summary
/// procedure alone cannot do it).
#[test]
fn example_7_endgame() {
    let program = parse_program(paper::EXAMPLE_7).unwrap().program;
    let mut summary_only = OptimizerConfig {
        freeze_enabled: false,
        ..OptimizerConfig::default()
    };
    summary_only.summary.add_cover_unit_rules = false;
    let out = optimize(&program, &summary_only).unwrap();
    let text = out.program.to_text();
    assert_eq!(out.program.rules.len(), 3, "{text}");
    assert!(
        text.contains("p[nd](X) :- b1(X, Y)."),
        "summary cannot remove this: {text}"
    );

    // With the freeze tests on, the residual rule is also removed (our
    // pipeline complements the paper's procedure, as §6 suggests).
    let full = optimize(&program, &OptimizerConfig::default()).unwrap();
    assert!(full.program.rules.len() <= 3);
}

/// Example 8: the answer set is proven empty at compile time.
#[test]
fn example_8_collapses_to_empty() {
    let program = parse_program(paper::EXAMPLE_8).unwrap().program;
    let out = optimize(&program, &OptimizerConfig::default()).unwrap();
    assert!(out.program.rules.is_empty(), "{}", out.program.to_text());
}

/// Example 10: the `big`-guarded swap rule requires Lemma 5.3.
#[test]
fn example_10_lemma_5_3() {
    let program = parse_program(paper::EXAMPLE_10).unwrap().program;
    let out = optimize(&program, &OptimizerConfig::default()).unwrap();
    assert!(
        !out.program.to_text().contains("big"),
        "{}",
        out.program.to_text()
    );
}

/// Example 9 vs 11: folding manufactures the unit rule that makes the
/// g4-guarded rule deletable.
#[test]
fn example_9_vs_11_folding() {
    // Example 9: the summary procedure alone cannot delete the g4 rule.
    let nine = parse_program(paper::EXAMPLE_9).unwrap().program;
    let summary_only = OptimizerConfig {
        freeze_enabled: false,
        ..OptimizerConfig::default()
    };
    let out9 = optimize(&nine, &summary_only).unwrap();
    assert!(
        out9.program.to_text().contains("g4"),
        "Example 9 must keep the g4 rule under summaries alone:\n{}",
        out9.program.to_text()
    );
    // Example 11 (the folded form): now it can.
    let eleven = parse_program(paper::EXAMPLE_11).unwrap().program;
    let out11 = optimize(&eleven, &summary_only).unwrap();
    assert!(
        !out11.program.to_text().contains("g4"),
        "Example 11's folding should enable the deletion:\n{}",
        out11.program.to_text()
    );
}

/// Example 12: the transformed program is query-equivalent and its
/// recursive predicate is binary instead of ternary.
#[test]
fn example_12_arity_reduction() {
    let adorned = parse_program(paper::EXAMPLE_12_ADORNED).unwrap().program;
    let transformed = parse_program(paper::EXAMPLE_12_TRANSFORMED)
        .unwrap()
        .program;
    assert_equivalent(&adorned, &transformed);
    let rec_arity = |p: &datalog_ast::Program| {
        p.rules
            .iter()
            .filter(|r| r.is_directly_recursive())
            .map(|r| r.head.arity())
            .max()
            .unwrap()
    };
    assert_eq!(rec_arity(&adorned), 3);
    assert_eq!(rec_arity(&transformed), 2);
}

//! Regression tests for optimizer bugs found by the differential fuzzer
//! (`cargo run -p datalog-bench --bin fuzz`). Each case is the minimized
//! random program that exposed the bug, asserted against the behavior that
//! was wrong at the time.

use datalog_ast::parse_program;
use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};
use datalog_opt::{optimize, OptimizerConfig};

fn check_equiv(src: &str, cfg: &OptimizerConfig) {
    let p = parse_program(src).unwrap().program;
    let out = optimize(&p, cfg).unwrap();
    out.program
        .validate()
        .expect("optimizer output must validate");
    let w = bounded_equiv_check(
        &p,
        &out.program,
        &EquivCheckConfig {
            instances: 120,
            ..EquivCheckConfig::default()
        },
    )
    .unwrap();
    assert!(
        w.is_none(),
        "optimizer changed answers: {w:?}\n{}",
        out.program.to_text()
    );
}

/// Fuzz seed 64: UQE deletions stranded components-generated booleans
/// because the `derived` set was captured before the components phase —
/// leaving rules guarded by undefined `b` predicates in the output.
#[test]
fn stale_derived_set_stranded_generated_booleans() {
    check_equiv(
        "q(U, Z) :- q(V, U), r(Z).\n\
         r(V) :- e(Y, V).\n\
         r(U) :- g(U, Y, X).\n\
         q(U, Y) :- e(V, Z), g(Y, Y, U).\n\
         ?- q(X, _).",
        &OptimizerConfig::default(),
    );
}

/// Fuzz seed 650: folding used two-way unification, so a repeated variable
/// in the definition (`g(X, Y, Y)`) merged two distinct variables of a
/// target rule (`g(U, V, W)`), narrowing its answers.
#[test]
fn fold_must_not_merge_distinct_rule_variables() {
    check_equiv(
        "q(Y, W) :- g(U, V, W), r(Y).\n\
         r(Z) :- f(W), e(U, Z), q(U, U).\n\
         q(U, Z) :- f(Z), e(U, U).\n\
         q(X, U) :- g(X, Y, Y), r(U), g(U, Y, Z).\n\
         q(V, V) :- q(V, Y).\n\
         ?- q(X, Y).",
        &OptimizerConfig::aggressive(),
    );
}

/// Fuzz seed 874: folding could orphan a head variable when it occurred in
/// the matched literals but not in the definition's interface, producing an
/// unsafe rule.
#[test]
fn fold_must_not_orphan_head_variables() {
    // A distilled version: X is supplied only by the matched pair, at a
    // position the definition's interface does not keep.
    check_equiv(
        "q(X) :- e(X, Y), g(Y, Z, Z), s(W).\n\
         q(X) :- e(X, Y), g(Y, U, U).\n\
         aux(W) :- s(W).\n\
         ?- q(_).",
        &OptimizerConfig::aggressive(),
    );
    // And the original fuzz program class: r-rule heads fed from inside the
    // folded region.
    check_equiv(
        "q(U, V) :- e(U, W), g(W, V, V).\n\
         r(X) :- e(X, Y), g(Y, Z, Z), f(X).\n\
         q(A, A) :- r(A).\n\
         ?- q(X, _).",
        &OptimizerConfig::aggressive(),
    );
}

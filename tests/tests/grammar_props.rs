//! Grammar-side properties: the Lemma 4.1 correspondence on random chain
//! programs, and Theorem 3.3's monadic rewriting on random right-linear
//! grammars.

use proptest::prelude::*;

use datalog_ast::{parse_atom, Query};
use datalog_engine::{query_answers, EvalOptions, FactSet};
use datalog_grammar::regular::{monadic_equivalent, KeptArg};
use datalog_grammar::{bounded_language, grammar_to_program, is_chain_program, program_to_grammar};
use xdl_integration_tests::right_linear_chain_strategy;

/// Random edge instance over the chain program's terminal relations.
fn chain_instance(program: &datalog_ast::Program, seed: u64) -> FactSet {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = FactSet::new();
    for pred in program.edb_preds() {
        let m = rng.gen_range(3..12);
        for _ in 0..m {
            let a = rng.gen_range(0..8i64);
            let b = rng.gen_range(0..8i64);
            fs.insert(
                pred.clone(),
                vec![datalog_ast::Value::Int(a), datalog_ast::Value::Int(b)],
            );
        }
    }
    fs
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    /// Program → grammar → program round-trips at the grammar level.
    #[test]
    fn grammar_roundtrip(program in right_linear_chain_strategy()) {
        prop_assert!(is_chain_program(&program));
        let g = program_to_grammar(&program).unwrap();
        let p2 = grammar_to_program(&g);
        let g2 = program_to_grammar(&p2).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Theorem 3.3 (constructive direction): the synthesized monadic
    /// program computes exactly the first-column projection of the chain
    /// program's answers.
    #[test]
    fn monadic_rewrite_preserves_projection(
        program in right_linear_chain_strategy(),
        seed in 0u64..1000,
    ) {
        let rewrite = monadic_equivalent(&program, KeptArg::First)
            .unwrap()
            .expect("right-linear grammars are regular");
        let mut projected = program.clone();
        projected.query = Some(Query::new(parse_atom("s(X, _)").unwrap()));
        let instance = chain_instance(&program, seed);
        let (orig, _) = query_answers(&projected, &instance, &EvalOptions::default()).unwrap();
        let (mono, _) = query_answers(&rewrite.program, &instance, &EvalOptions::default()).unwrap();
        prop_assert_eq!(orig.rows, mono.rows,
            "program:\n{}\nmonadic:\n{}", program.to_text(), rewrite.program.to_text());
    }

    /// Lemma 4.1(2), bounded: a word of length k is in L(G) iff the chain
    /// program answers `s(0, k)` on the "word instance" spelling that word.
    #[test]
    fn words_match_path_queries(program in right_linear_chain_strategy()) {
        let g = program_to_grammar(&program).unwrap();
        let words = bounded_language(&g, 4).unwrap();
        for word in words.iter().take(8) {
            // Build the instance 0 -w1-> 1 -w2-> 2 ... along the word.
            let mut fs = FactSet::new();
            for (i, sym) in word.iter().enumerate() {
                fs.insert(
                    datalog_ast::PredRef { name: *sym, adornment: None },
                    vec![
                        datalog_ast::Value::Int(i as i64),
                        datalog_ast::Value::Int(i as i64 + 1),
                    ],
                );
            }
            let mut p = program.clone();
            let end = word.len() as i64;
            p.query = Some(Query::new(parse_atom(&format!("s(0, {end})")).unwrap()));
            let (ans, _) = query_answers(&p, &fs, &EvalOptions::default()).unwrap();
            prop_assert_eq!(
                ans.as_bool(), Some(true),
                "word {:?} in L(G) but path not derived\nprogram:\n{}",
                word, program.to_text()
            );
        }
    }
}

/// Lemma 4.1(3/4) on the canonical pair: left- vs right-recursive TC are
/// query-equivalent (same language) but not uniformly equivalent
/// (different extended language) — checked both grammar-side and
/// program-side.
#[test]
fn lemma_4_1_canonical_pair() {
    use datalog_ast::parse_program;
    use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};
    use datalog_grammar::bounded_language_equal;

    let right = parse_program(
        "a(X, Y) :- p(X, Z), a(Z, Y).\n\
         a(X, Y) :- p(X, Y).\n\
         ?- a(X, Y).",
    )
    .unwrap()
    .program;
    let left = parse_program(
        "a(X, Y) :- a(X, Z), p(Z, Y).\n\
         a(X, Y) :- p(X, Y).\n\
         ?- a(X, Y).",
    )
    .unwrap()
    .program;
    let gr = program_to_grammar(&right).unwrap();
    let gl = program_to_grammar(&left).unwrap();

    // Same terminal language (query equivalence)...
    assert!(bounded_language_equal(&gr, &gl, 7, false).unwrap());
    let w = bounded_equiv_check(&right, &left, &EquivCheckConfig::default()).unwrap();
    assert!(w.is_none());

    // ...different extended language (uniform inequivalence)...
    assert!(!bounded_language_equal(&gr, &gl, 7, true).unwrap());
    // ...witnessed program-side by seeding the IDB.
    let cfg = EquivCheckConfig {
        seed_idb: true,
        instances: 80,
        ..EquivCheckConfig::default()
    };
    let w = bounded_equiv_check(&right, &left, &cfg).unwrap();
    assert!(
        w.is_some(),
        "seeded instances must separate left- from right-recursive TC"
    );
}

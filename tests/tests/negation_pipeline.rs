//! The stratified-negation extension (§6 future work) through the
//! optimizer: adornment, components and projection handle negated
//! literals; the Horn-only deletion machinery stands down.

use datalog_ast::{parse_program, PredRef, Value};
use datalog_engine::{query_answers, EvalOptions, FactSet};
use datalog_opt::{optimize, OptimizerConfig, Phase};

fn fs(pairs: &[(&str, &[i64])]) -> FactSet {
    let mut f = FactSet::new();
    for (p, args) in pairs {
        f.insert(
            PredRef::new(p),
            args.iter().map(|&a| Value::int(a)).collect(),
        );
    }
    f
}

fn optimize_and_compare(src: &str, input: &FactSet) -> datalog_opt::OptimizeOutcome {
    let p = parse_program(src).unwrap().program;
    let out = optimize(&p, &OptimizerConfig::default()).unwrap();
    let (orig, _) = query_answers(&p, input, &EvalOptions::default()).unwrap();
    let opts = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    let (opt, _) = query_answers(&out.program, input, &opts).unwrap();
    assert_eq!(orig.rows, opt.rows, "optimized:\n{}", out.program.to_text());
    out
}

#[test]
fn existential_query_with_negation_projects() {
    // "Which live nodes can reach something?" — negation inside the
    // recursion; the second column is still existential.
    let src = "reach(X, Y) :- edge(X, Z), live(Z), reach(Z, Y), not quarantined(X).\n\
               reach(X, Y) :- edge(X, Y), not quarantined(X).\n\
               ?- reach(X, _).";
    let input = fs(&[
        ("edge", &[1, 2]),
        ("edge", &[2, 3]),
        ("edge", &[4, 5]),
        ("live", &[2]),
        ("live", &[3]),
        ("quarantined", &[4]),
    ]);
    let out = optimize_and_compare(src, &input);
    let text = out.program.to_text();
    // Projection still happened: reach[nd] is unary.
    assert!(text.contains("reach[nd](X)"), "{text}");
    assert!(text.contains("not quarantined(X)"), "{text}");
    // Deletion phases stood down.
    assert!(out
        .report
        .actions
        .iter()
        .any(|a| a.description.contains("negation")));
    assert!(!out
        .report
        .actions
        .iter()
        .any(|a| matches!(a.phase, Phase::UqeDeletion | Phase::SummaryDeletion)));
}

#[test]
fn negated_existential_subquery_becomes_boolean() {
    // The audit subquery uses negation internally but is disconnected from
    // the head: components still extract it.
    let src = "ok(X) :- item(X), audit(A), not revoked(A).\n\
               ?- ok(X).";
    let input = fs(&[
        ("item", &[1]),
        ("item", &[2]),
        ("audit", &[10]),
        ("audit", &[11]),
        ("revoked", &[10]),
    ]);
    let out = optimize_and_compare(src, &input);
    let text = out.program.to_text();
    assert!(text.contains("b1 :- audit(A), not revoked(A)."), "{text}");
}

#[test]
fn subsumption_respects_negation() {
    // The rule WITHOUT the negation is more general and subsumes the one
    // with it...
    let src = "q(X) :- e(X, Y).\n\
               q(X) :- e(X, Y), not bad(X).\n\
               ?- q(X).";
    let input = fs(&[("e", &[1, 2]), ("e", &[3, 4]), ("bad", &[3])]);
    let out = optimize_and_compare(src, &input);
    assert_eq!(out.program.rules.len(), 1, "{}", out.program.to_text());
    assert!(!out.program.rules[0].has_negation());

    // ...but never the other way around: the negated rule must survive
    // when it is the only definition.
    let src2 = "q(X) :- e(X, Y), not bad(X).\n\
                q(X) :- f(X), not bad(X).\n\
                ?- q(X).";
    let input2 = fs(&[("e", &[1, 2]), ("f", &[3]), ("bad", &[1])]);
    let out2 = optimize_and_compare(src2, &input2);
    assert_eq!(out2.program.rules.len(), 2);
}

#[test]
fn stratified_layers_survive_the_pipeline() {
    let src = "reach(Y) :- start(Y).\n\
               reach(Y) :- reach(X), edge(X, Y).\n\
               unreached(X) :- node(X), not reach(X).\n\
               ?- unreached(X).";
    let input = fs(&[
        ("start", &[0]),
        ("edge", &[0, 1]),
        ("node", &[0]),
        ("node", &[1]),
        ("node", &[7]),
    ]);
    let out = optimize_and_compare(src, &input);
    // reach is negated, hence fully needed: no projection of reach.
    let text = out.program.to_text();
    assert!(text.contains("not reach"), "{text}");
}

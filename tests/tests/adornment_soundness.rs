//! Lemma 2.2 (soundness of the adornment algorithm), checked semantically:
//! every argument the algorithm adorns `d` survives the paper's §2
//! definition when tested on random instances — applying the definition's
//! scrambling transformation to that argument never changes the query's
//! answers.

use proptest::prelude::*;

use datalog_adorn::semantic::{definition_transform, with_active_domain};
use datalog_adorn::{adorn, AdornResult};
use datalog_ast::{Ad, Program, Term};
use datalog_engine::{query_answers, EvalOptions};
use xdl_integration_tests::{instance_strategy, program_strategy};

/// Collect `(rule, literal, argument)` positions adorned `d` in the adorned
/// program, but expressed against the *adorned* program itself (whose
/// literals carry the adornments).
fn d_positions(adorned: &AdornResult) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (ri, rule) in adorned.program.rules.iter().enumerate() {
        for (li, lit) in rule.body.iter().enumerate() {
            if let Some(ad) = &lit.pred.adornment {
                if ad.len() != lit.arity() {
                    continue; // projected form (not generated here)
                }
                for (ai, a) in ad.0.iter().enumerate() {
                    if *a == Ad::D && matches!(lit.terms[ai], Term::Var(_)) {
                        out.push((ri, li, ai));
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn every_d_adornment_is_semantically_existential(
        program in program_strategy(),
        instance in instance_strategy(3, 14),
    ) {
        let adorned = match adorn(&program) {
            Ok(a) if !a.versions.is_empty() => a,
            _ => return Ok(()), // EDB query or nothing adorned
        };
        let positions = d_positions(&adorned);
        let base: Program = adorned.program.clone();
        let inst = with_active_domain(&instance);
        let (reference, _) = query_answers(&base, &inst, &EvalOptions::default()).unwrap();
        for (ri, li, ai) in positions {
            let transformed = definition_transform(&base, ri, li, ai).unwrap();
            let (scrambled, _) =
                query_answers(&transformed, &inst, &EvalOptions::default()).unwrap();
            prop_assert_eq!(
                &reference.rows, &scrambled.rows,
                "scrambling rule {} literal {} arg {} changed answers\nprogram:\n{}",
                ri, li, ai, base.to_text()
            );
        }
    }

    /// The adorned program itself answers exactly like the original.
    #[test]
    fn adornment_preserves_answers(
        program in program_strategy(),
        instance in instance_strategy(4, 18),
    ) {
        let adorned = match adorn(&program) {
            Ok(a) if !a.versions.is_empty() => a,
            _ => return Ok(()),
        };
        let (orig, _) = query_answers(&program, &instance, &EvalOptions::default()).unwrap();
        let (ad, _) = query_answers(&adorned.program, &instance, &EvalOptions::default()).unwrap();
        prop_assert_eq!(orig.rows, ad.rows,
            "adorned program diverged:\n{}", adorned.program.to_text());
    }
}

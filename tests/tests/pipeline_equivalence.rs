//! Property: the optimizer preserves query answers on random safe programs
//! and random instances — for the full pipeline and for each phase subset.

use proptest::prelude::*;

use datalog_engine::{query_answers, EvalOptions};
use datalog_opt::{optimize, OptimizerConfig};
use xdl_integration_tests::{instance_strategy, program_strategy};

fn eval_opts_with_cut() -> EvalOptions {
    EvalOptions {
        boolean_cut: true,
        max_iterations: 10_000,
        ..EvalOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Full pipeline ≡ original on random instances.
    #[test]
    fn full_pipeline_preserves_answers(
        program in program_strategy(),
        instance in instance_strategy(4, 20),
    ) {
        let out = optimize(&program, &OptimizerConfig::default()).unwrap();
        let (orig, _) = query_answers(&program, &instance, &EvalOptions::default()).unwrap();
        let (opt, _) = query_answers(&out.program, &instance, &eval_opts_with_cut()).unwrap();
        prop_assert_eq!(
            &orig.rows, &opt.rows,
            "program:\n{}\noptimized:\n{}\ninstance:\n{}",
            program.to_text(), out.program.to_text(), instance.to_text()
        );
    }

    /// Rewrite-only (adorn + components + projection, no deletions).
    #[test]
    fn rewrite_only_preserves_answers(
        program in program_strategy(),
        instance in instance_strategy(4, 20),
    ) {
        let out = optimize(&program, &OptimizerConfig::rewrite_only()).unwrap();
        let (orig, _) = query_answers(&program, &instance, &EvalOptions::default()).unwrap();
        let (opt, _) = query_answers(&out.program, &instance, &eval_opts_with_cut()).unwrap();
        prop_assert_eq!(&orig.rows, &opt.rows,
            "program:\n{}\noptimized:\n{}", program.to_text(), out.program.to_text());
    }

    /// The optimized program never blows up the derivation work. (Several
    /// adorned versions of one predicate can legitimately coexist — e.g. a
    /// swap recursion generates `s[nd]` and `s[dn]` — so the bound allows a
    /// constant factor, not a free pass.)
    #[test]
    fn optimizer_never_blows_up_facts(
        program in program_strategy(),
        instance in instance_strategy(4, 20),
    ) {
        let out = optimize(&program, &OptimizerConfig::default()).unwrap();
        let (_, so) = query_answers(&program, &instance, &EvalOptions::default()).unwrap();
        let (_, sp) = query_answers(&out.program, &instance, &eval_opts_with_cut()).unwrap();
        // Adornment can fork a predicate into several versions (q[nn],
        // q[dn], ...) plus zero-ary booleans, each materialized separately;
        // on micro-instances the constants dominate, hence the slack.
        prop_assert!(
            sp.facts_derived <= 3 * so.facts_derived + 10,
            "optimized did more work: {} vs {} facts\nprogram:\n{}\noptimized:\n{}",
            sp.facts_derived, so.facts_derived, program.to_text(), out.program.to_text()
        );
    }
}

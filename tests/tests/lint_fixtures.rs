//! The lint fixtures under `tests/lint/` are intentionally broken and must
//! keep producing byte-identical diagnostics — `scripts/check.sh` and
//! editor integrations both consume the `path:line:col: severity[code]:
//! message` shape. A second suite re-validates the optimizer pipeline over
//! every example program, the in-process form of `xdl verify-opt`.

use datalog_lint::{has_errors, lint_source};
use datalog_opt::{optimize, validate, OptimizerConfig};

fn fixture(name: &str) -> String {
    let path = format!("{}/lint/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn rendered(name: &str) -> Vec<String> {
    lint_source(&fixture(name))
        .iter()
        .map(|d| d.render_at(&format!("tests/lint/{name}")))
        .collect()
}

#[test]
fn unsafe_rule_fixture_diagnostics_are_stable() {
    let src = fixture("unsafe_rule.dl");
    assert!(has_errors(&lint_source(&src)));
    assert_eq!(
        rendered("unsafe_rule.dl"),
        vec![
            "tests/lint/unsafe_rule.dl:4:1: error[safety]: head variable Y of \
             `reach(X, Y) :- edge(X, Z).` is not bound by a positive body literal",
            "tests/lint/unsafe_rule.dl:4:1: warning[singleton-var]: variable Z occurs \
             only once in `reach(X, Y) :- edge(X, Z).` — use `_` if the existential \
             reading is intended",
        ]
    );
}

#[test]
fn dead_code_fixture_diagnostics_are_stable() {
    let src = fixture("dead_code.dl");
    assert!(has_errors(&lint_source(&src)));
    assert_eq!(
        rendered("dead_code.dl"),
        vec![
            "tests/lint/dead_code.dl:5:1: warning[subsumed-rule]: rule \
             `path(U, V) :- edge(U, V).` is a duplicate of the rule at line 4 \
             (`path(X, Y) :- edge(X, Y).`) and can be deleted",
            "tests/lint/dead_code.dl:6:1: warning[unused-predicate]: derived \
             predicate `helper` is never used",
            "tests/lint/dead_code.dl:7:1: warning[fact-for-derived]: fact for \
             derived predicate `path`: by the paper's convention the IDB holds no \
             facts (EDB facts arrive with the database)",
            "tests/lint/dead_code.dl:8:1: error[arity]: fact for `edge` has \
             3 value(s) but the predicate has arity 2",
        ]
    );
}

#[test]
fn cartesian_fixture_diagnostics_are_stable() {
    let src = fixture("cartesian.dl");
    assert!(!has_errors(&lint_source(&src)), "warnings only");
    assert_eq!(
        rendered("cartesian.dl"),
        vec![
            "tests/lint/cartesian.dl:4:1: warning[bound-cartesian]: rule \
             `holds(P, A) :- owner(P), asset(A).` joins 2 variable-disjoint \
             groups {owner} x {asset} — the derivation bound is their full \
             cross product",
        ]
    );
}

#[test]
fn unbounded_fixture_diagnostics_are_stable() {
    let src = fixture("unbounded.dl");
    assert!(!has_errors(&lint_source(&src)), "warnings only");
    assert_eq!(
        rendered("unbounded.dl"),
        vec![
            "tests/lint/unbounded.dl:4:1: warning[bound-unbounded]: recursive \
             predicate `t` is nonlinear and no column can be traced to a base \
             relation; no size bound tighter than the active-domain fallback \
             adom^2 is certified — bound-aware admission will flag this form",
        ]
    );
}

#[test]
fn example_bounds_are_sound_against_actual_evaluation() {
    // For every shipped example: evaluate the program on its own facts and
    // check that no derived predicate exceeds the statically certified
    // bound at the true EDB cardinalities. This is the pinned, named-
    // workload form of the fuzz soundness arm.
    use datalog_engine::{evaluate, EvalOptions, FactSet};
    let dir = format!("{}/../examples/data", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "dl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = datalog_ast::parse_program(&src).unwrap();
        let report = datalog_lint::analyze_bounds(&parsed.program)
            .unwrap_or_else(|e| panic!("{}: bounds analysis failed: {e}", path.display()));
        let instance = FactSet::from_parsed(&parsed.facts);
        let cards: std::collections::BTreeMap<String, u64> = report
            .edb
            .iter()
            .map(|p| (p.to_string(), instance.count(p) as u64))
            .collect();
        let out = evaluate(&parsed.program, &instance, &EvalOptions::default()).unwrap();
        for pred in &report.idb {
            let actual = out
                .database
                .pred_id(pred)
                .map_or(0, |id| out.database.relation(id).len()) as u64;
            let bound = report.eval_count(pred, &cards).unwrap_or_else(|| {
                panic!("{}: no bound for derived predicate {pred}", path.display())
            });
            assert!(
                actual <= bound,
                "{}: {pred} derived {actual} facts, certified bound is {bound}",
                path.display()
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the shipped example programs in {dir}"
    );
}

#[test]
fn example_programs_lint_clean() {
    let dir = format!("{}/../examples/data", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "dl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let diags = lint_source(&src);
        assert!(
            !has_errors(&diags),
            "{}: {:?}",
            path.display(),
            diags.iter().map(|d| d.render_at("-")).collect::<Vec<_>>()
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the shipped example programs in {dir}"
    );
}

#[test]
fn example_programs_survive_translation_validation() {
    // The in-process `xdl verify-opt examples/data/*.dl`: every phase of
    // every optimization run must be re-justifiable, with zero unjustified
    // deletions.
    let dir = format!("{}/../examples/data", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "dl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let program = datalog_ast::parse_program(&src).unwrap().program;
        let out = optimize(&program, &OptimizerConfig::default()).unwrap();
        let v = validate(&out.report);
        assert!(v.ok(), "{}:\n{}", path.display(), v.to_text());
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the shipped example programs in {dir}"
    );
}

#[test]
fn verify_flag_gates_the_pipeline() {
    // `OptimizerConfig::verify` makes a validation failure abort the
    // optimize call itself; on sound runs it is invisible apart from the
    // trailing validation event.
    let program = datalog_ast::parse_program(
        "a(X, Y) :- p(X, Z), a(Z, Y).\n\
         a(X, Y) :- p(X, Y).\n\
         ?- a(X, _).",
    )
    .unwrap()
    .program;
    let verified = optimize(
        &program,
        &OptimizerConfig {
            verify: true,
            ..OptimizerConfig::default()
        },
    )
    .unwrap();
    let plain = optimize(&program, &OptimizerConfig::default()).unwrap();
    assert_eq!(verified.program.to_text(), plain.program.to_text());
}

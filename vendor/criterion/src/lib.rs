//! Offline stand-in for the subset of the `criterion` 0.5 API the bench
//! targets use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `warm_up_time` / `measurement_time`),
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no crates.io access, so the real criterion
//! cannot be fetched. This shim keeps every bench target compiling and
//! runnable (`cargo bench`) with a simple median-of-samples timer: each
//! sample times one closure invocation after a warm-up phase, and the
//! median/min/max are printed per benchmark id. It does no statistical
//! outlier analysis and writes no reports — for trajectory tracking this
//! repo uses the `harness` binary and `xdl profile` instead, which emit
//! machine-readable JSON.

use std::time::{Duration, Instant};

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handle.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Accept (and mostly ignore) criterion-style CLI arguments; a bare
    /// positional argument becomes a substring filter on benchmark ids.
    pub fn configure_from_args(mut self) -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                // Flags cargo-bench / criterion pass that we ignore.
                "--bench" | "--test" | "--verbose" | "--quiet" | "--noplot" => {}
                // Options with a value we ignore.
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" | "--output-format" => {
                    let _ = it.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            criterion: self,
        }
    }

    /// Register a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sampling budget (a cap: sampling also stops at `sample_size`).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Time `f` and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Close the group (no-op beyond dropping the borrow).
    pub fn finish(self) {}
}

/// Times a closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up, then record one wall-time sample per
    /// invocation until the sample count or the measurement budget is hit.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let run_start = Instant::now();
        while self.samples.len() < self.sample_size
            && (self.samples.is_empty() || run_start.elapsed() < self.measurement)
        {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id}: no samples recorded");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{id}: median {:.3} ms (min {:.3} ms, max {:.3} ms, {} samples)",
            median.as_secs_f64() * 1e3,
            min.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
            self.samples.len()
        );
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        g.bench_function("id", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut g = c.benchmark_group("group");
        let mut ran = false;
        g.bench_function("id", |_b| ran = true);
        g.finish();
        assert!(!ran);
    }
}

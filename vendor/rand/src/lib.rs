//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; everything that consumes randomness here (workload
//! generators, the bounded equivalence oracles, the fuzzer) only needs a
//! deterministic, seedable source of uniform integers. The generator is
//! SplitMix64 — tiny, fast, and with well-understood statistical quality
//! far beyond what property tests and workload shuffles require.
//!
//! The API is intentionally a strict subset: if a caller reaches for a
//! `rand` feature that is missing, the build breaks loudly rather than
//! silently behaving differently from the real crate.

/// Sources of raw 64-bit randomness.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is offered).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 high bits -> uniform double in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not cryptographically secure — neither callers here nor the real
    /// `StdRng` contract as used in this workspace (seeded, reproducible
    /// test data) require that.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(3..=7);
            assert!((3..=7).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "suspicious bias: {hits}");
    }
}

//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use.
//!
//! The build environment has no crates.io access, so the real proptest
//! cannot be fetched. This shim keeps the property-test suites compiling
//! and *running*: strategies generate deterministic pseudo-random values
//! (seeded per test from the test's name, so failures reproduce across
//! runs), the [`proptest!`] macro expands to ordinary `#[test]` functions
//! looping over `ProptestConfig::cases` cases, and `prop_assert*` macros
//! report failures through ordinary panics.
//!
//! What is intentionally **not** implemented: shrinking (a failing case is
//! reported as-is; the assertion messages in this workspace already print
//! the offending program text), failure persistence (`.proptest-regressions`
//! files are ignored), and the full strategy combinator zoo — only the
//! combinators the test suites use exist, so an unsupported API fails the
//! build loudly instead of changing semantics silently.

pub mod test_runner {
    /// Subset of proptest's config: case count plus the (accepted but
    /// unused, since this shim does not shrink) shrink-iteration cap.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; this shim never rejects
        /// inputs, so the cap is unused.
        pub max_global_rejects: u32,
        /// Accepted for source compatibility; unused (no verbose output).
        pub verbose: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
                verbose: 0,
            }
        }
    }

    /// Error a test-case body can return (`return Ok(())` early-exits a
    /// case; `Err` fails the test). Mirrors upstream's two variants.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The input was rejected (upstream would retry; this shim fails).
        Reject(String),
        /// The case genuinely failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Carries the RNG state threaded through strategy generation.
    #[derive(Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            TestRunner::from_seed(0x5EED_0BAD_F00D_CAFE)
        }
    }

    impl TestRunner {
        /// Runner with the default seed (config is accepted for API
        /// compatibility; it only matters to the `proptest!` macro loop).
        pub fn new(_config: ProptestConfig) -> TestRunner {
            TestRunner::default()
        }

        /// Runner seeded from an explicit 64-bit state.
        pub fn from_seed(seed: u64) -> TestRunner {
            TestRunner { state: seed }
        }

        /// Runner deterministically seeded from a test name (FNV-1a), so
        /// every `proptest!` test replays the same cases on every run.
        pub fn for_test(name: &str) -> TestRunner {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner::from_seed(h)
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi]` (inclusive), in i128 space so every
        /// integer strategy can share it.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty strategy range");
            let span = (hi - lo) as u128 + 1;
            lo + ((self.next_u64() as u128) % span) as i128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::cell::RefCell;

    /// A generated value wrapper. Real proptest uses value trees for
    /// shrinking; this shim's tree is just the value, consumable once.
    pub trait ValueTree {
        /// The value's type.
        type Value;
        /// Take the generated value (single use).
        fn current(&self) -> Self::Value;
    }

    /// The one [`ValueTree`] implementation: holds the generated value.
    pub struct OnceTree<T>(RefCell<Option<T>>);

    impl<T> ValueTree for OnceTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0
                .borrow_mut()
                .take()
                .expect("OnceTree::current consumed twice (shim limitation)")
        }
    }

    /// Something that can generate random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// proptest-compatible entry point (always succeeds here).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<OnceTree<Self::Value>, String> {
            Ok(OnceTree(RefCell::new(Some(self.generate(runner)))))
        }

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Filter generated values (retries until `f` accepts, with a cap).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, runner: &mut TestRunner) -> S2::Value {
            (self.f)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(runner);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
        }
    }

    macro_rules! impl_int_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    runner.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Inclusive size bounds for [`vec`], converted from `usize`,
    /// `Range<usize>`, or `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy for `Option<S::Value>`; see [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, like proptest's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(runner))
            }
        }
    }
}

/// The imports every property-test file pulls in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property, reporting failure by panic (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that loops over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::{Strategy as _, ValueTree as _};
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $pat = ($strat)
                    .new_tree(&mut runner)
                    .expect("strategy generation cannot fail in this shim")
                    .current();)*
                // Mirror upstream proptest: the body runs inside a
                // `Result`-returning scope so `return Ok(())` (skip this
                // case) and `?` both work.
                let body = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let ::core::result::Result::Err(e) = body() {
                    panic!("test case failed: {e}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn composite_strategies_work(
            x in 0..10usize,
            (a, b) in (0..5i64, crate::collection::vec(0..3u32, 1..=4)),
            flag in crate::bool::ANY,
            opt in crate::option::of(1..3i32),
        ) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!(!b.is_empty() && b.len() <= 4);
            prop_assert!(b.iter().all(|&v| v < 3));
            prop_assert!(u8::from(flag) <= 1);
            if let Some(v) = opt {
                prop_assert!((1..3).contains(&v));
            }
        }
    }

    #[test]
    fn maps_and_flat_maps_compose() {
        use crate::strategy::ValueTree as _;
        let mut runner = TestRunner::default();
        let s = (0..5usize)
            .prop_flat_map(|n| crate::collection::vec(0..10u64, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.new_tree(&mut runner).unwrap().current();
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn test_runner_is_deterministic_per_name() {
        let mut a = TestRunner::for_test("same");
        let mut b = TestRunner::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

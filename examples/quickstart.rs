//! Quickstart: parse a program with an existential query, optimize it, and
//! compare the work done by bottom-up evaluation before and after.
//!
//! ```text
//! cargo run -p xdl-examples --bin quickstart
//! ```

use existential_datalog::prelude::*;

fn main() {
    // "Which nodes can reach *some* other node?" — the second column of the
    // transitive closure is never reported, so computing it is wasted work.
    let source = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                  a(X, Y) :- p(X, Y).\n\
                  ?- a(X, _).";
    println!("original program:\n{source}\n");

    let parsed = parse_program(source).expect("parses");
    let outcome = optimize(&parsed.program, &OptimizerConfig::default()).expect("optimizes");

    println!("optimizer report:\n{}", outcome.report.to_text());
    println!("optimized program:\n{}", outcome.program.to_text());

    // A 500-node chain: the original computes all ~125k closure pairs; the
    // optimized program only the ~500 sources.
    let mut edb = FactSet::new();
    for i in 0..500 {
        edb.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
    }

    let (orig_answers, orig_stats) =
        query_answers(&parsed.program, &edb, &EvalOptions::default()).expect("evaluates");
    let (opt_answers, opt_stats) =
        query_answers(&outcome.program, &edb, &EvalOptions::default()).expect("evaluates");

    assert_eq!(orig_answers.rows, opt_answers.rows, "answers must agree");
    println!("answers: {} nodes with a successor", opt_answers.len());
    println!("original : {orig_stats}");
    println!("optimized: {opt_stats}");
    println!(
        "facts reduced {}x, scans reduced {}x",
        orig_stats.facts_derived / opt_stats.facts_derived.max(1),
        orig_stats.tuples_scanned / opt_stats.tuples_scanned.max(1),
    );
}

//! Scenario: an HR database with a `manages(Boss, Report)` relation.
//! The query "which employees are managers at any level?" is existential —
//! we never need the *set of reports*, only that one exists.
//!
//! The optimizer turns the binary management-closure into a unary
//! "has-a-report" predicate and then deletes the recursion outright
//! (somebody with a transitive report necessarily has a direct one), which
//! is exactly the paper's Examples 1 → 3 → 4 chain.
//!
//! ```text
//! cargo run -p xdl-examples --bin org_reachability
//! ```

use existential_datalog::prelude::*;

fn org_edb(teams: i64, depth: i64) -> FactSet {
    // `teams` chains of management, each `depth` levels deep, plus a CEO
    // managing every chain head.
    let mut edb = FactSet::new();
    let manages = PredRef::new("manages");
    let ceo = Value::sym("ceo");
    for t in 0..teams {
        let head = Value::int(t * 1000);
        edb.insert(manages.clone(), vec![ceo, head]);
        for d in 0..depth {
            edb.insert(
                manages.clone(),
                vec![Value::int(t * 1000 + d), Value::int(t * 1000 + d + 1)],
            );
        }
    }
    edb
}

fn main() {
    let source = "oversees(B, E) :- manages(B, M), oversees(M, E).\n\
                  oversees(B, E) :- manages(B, E).\n\
                  ?- oversees(B, _).";
    println!("HR program (who oversees at least one employee?):\n{source}\n");

    let program = parse_program(source).expect("parses").program;
    let outcome = optimize(&program, &OptimizerConfig::default()).expect("optimizes");
    println!("{}", outcome.report.to_text());
    println!("optimized:\n{}", outcome.program.to_text());

    for (teams, depth) in [(10i64, 50i64), (50, 100)] {
        let edb = org_edb(teams, depth);
        let (orig, so) = query_answers(&program, &edb, &EvalOptions::default()).unwrap();
        let (opt, sp) = query_answers(&outcome.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, opt.rows);
        println!(
            "teams={teams} depth={depth}: {} managers | original {} facts / {} scans | \
             optimized {} facts / {} scans",
            opt.len(),
            so.facts_derived,
            so.tuples_scanned,
            sp.facts_derived,
            sp.tuples_scanned
        );
    }

    // The existential answer is also available as a derivation proof:
    let edb = org_edb(3, 4);
    let out = existential_datalog::engine::evaluate(
        &program,
        &edb,
        &EvalOptions {
            record_provenance: true,
            ..EvalOptions::default()
        },
    )
    .unwrap();
    let prov = out.provenance.as_ref().unwrap();
    let oversees = out
        .database
        .pred_id(&PredRef::new("oversees"))
        .expect("registered");
    if let Some(tree) =
        prov.derivation_tree(&out.database, oversees, &[Value::sym("ceo"), Value::int(3)])
    {
        println!("\nwhy does the CEO oversee employee 3?\n{}", tree.render());
    }
}

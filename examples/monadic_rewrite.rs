//! Theorem 3.3 in action: a binary chain program whose grammar is regular
//! gets an equivalent *monadic* program synthesized from its DFA; a
//! non-regular one is (correctly) refused.
//!
//! ```text
//! cargo run -p xdl-examples --bin monadic_rewrite
//! ```

use existential_datalog::grammar::regular::{monadic_equivalent, KeptArg};
use existential_datalog::grammar::{bounded_language, program_to_grammar};
use existential_datalog::prelude::*;

fn show(title: &str, source: &str) {
    println!("=== {title} ===\n{source}");
    let program = parse_program(source).expect("parses").program;
    let cfg = program_to_grammar(&program).expect("chain program");
    println!("grammar:\n{}", cfg.to_text());
    let words = bounded_language(&cfg, 5).expect("enumerates");
    let rendered: Vec<String> = words
        .iter()
        .map(|w| w.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" "))
        .collect();
    println!("L(G) up to length 5: {{ {} }}", rendered.join(", "));
    match monadic_equivalent(&program, KeptArg::First).expect("chain program") {
        Some(rewrite) => {
            println!(
                "regular (DFA with {} states). Monadic equivalent:\n{}",
                rewrite.dfa_states,
                rewrite.program.to_text()
            );
        }
        None => println!("not certifiably regular: no monadic rewrite (Theorem 3.3)."),
    }
    println!();
}

fn main() {
    show(
        "transitive closure (language p+ — regular)",
        "a(X, Y) :- p(X, Z), a(Z, Y).\n\
         a(X, Y) :- p(X, Y).\n\
         ?- a(X, Y).",
    );
    show(
        "alternating walk ((up dn)+ — regular)",
        "w(X, Y) :- up(X, A), dn(A, B), w(B, Y).\n\
         w(X, Y) :- up(X, A), dn(A, Y).\n\
         ?- w(X, Y).",
    );
    show(
        "matched climb (up^n flat dn^n — NOT regular)",
        "s(X, Y) :- up(X, A), s(A, B), dn(B, Y).\n\
         s(X, Y) :- up(X, A), flat(A, B), dn(B, Y).\n\
         ?- s(X, Y).",
    );

    // Sanity: the monadic rewrite really computes the same first column.
    let tc = parse_program(
        "a(X, Y) :- p(X, Z), a(Z, Y).\n\
         a(X, Y) :- p(X, Y).\n\
         ?- a(X, _).",
    )
    .unwrap()
    .program;
    let rewrite = monadic_equivalent(&tc, KeptArg::First).unwrap().unwrap();
    let mut edb = FactSet::new();
    for i in 0..100 {
        edb.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
    }
    let (orig, _) = query_answers(&tc, &edb, &EvalOptions::default()).unwrap();
    let (mono, _) = query_answers(&rewrite.program, &edb, &EvalOptions::default()).unwrap();
    assert_eq!(orig.rows, mono.rows);
    println!(
        "sanity check on a 100-chain: both programs report {} sources. OK.",
        mono.len()
    );
}

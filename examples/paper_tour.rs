//! A guided tour: run every worked example of the paper through the
//! optimizer and show what each phase did.
//!
//! ```text
//! cargo run -p xdl-examples --bin paper_tour
//! ```

use existential_datalog::opt::paper;
use existential_datalog::prelude::*;

fn main() {
    for example in paper::catalog() {
        println!("################ {} ################", example.name);
        println!("# {}", example.note);
        if example.reconstructed {
            println!("# (reconstructed: the PODS'88 scan garbles this example)");
        }
        println!("{}", example.text);
        let program = parse_program(example.text).expect("catalog parses").program;
        match optimize(&program, &OptimizerConfig::default()) {
            Ok(outcome) => {
                println!("--- optimizer report ---");
                print!("{}", outcome.report.to_text());
                println!("--- optimized program ---");
                if outcome.program.rules.is_empty() {
                    println!("(no rules: the answer set is provably empty)");
                } else {
                    print!("{}", outcome.program.to_text());
                }
            }
            Err(e) => println!("optimizer declined: {e}"),
        }
        println!();
    }
}

//! Example binaries for the existential-datalog workspace.

//! Scenario: a bill-of-materials check with an existential side condition.
//!
//! A part is `shippable` when its sub-part tree is in stock AND *some*
//! certified audit record exists. The audit subquery is disconnected from
//! the part variables — the paper's §3.1 turns it into a zero-arity boolean
//! that the engine proves once and then retires (bottom-up cut, Example 2).
//!
//! ```text
//! cargo run -p xdl-examples --bin bom_certification
//! ```

use existential_datalog::prelude::*;

fn main() {
    let source = "shippable(P, Q) :- sub(P, R), shippable(R, Q), certified(A).\n\
                  shippable(P, Q) :- sub(P, Q), certified(A).\n\
                  ?- shippable(P, _).";
    println!("BOM program:\n{source}\n");

    let program = parse_program(source).expect("parses").program;
    let outcome = optimize(&program, &OptimizerConfig::default()).expect("optimizes");
    println!("{}", outcome.report.to_text());
    println!("optimized:\n{}", outcome.program.to_text());

    // The `certified` relation is huge; only its non-emptiness matters.
    for audit_rows in [500i64, 10_000] {
        let mut edb = FactSet::new();
        let sub = PredRef::new("sub");
        for p in 0..120i64 {
            for k in 1..=2 {
                let q = p * 2 + k;
                if q < 120 {
                    edb.insert(sub.clone(), vec![Value::int(p), Value::int(q)]);
                }
            }
        }
        let certified = PredRef::new("certified");
        for a in 0..audit_rows {
            edb.insert(certified.clone(), vec![Value::int(a)]);
        }

        let (orig, so) = query_answers(&program, &edb, &EvalOptions::default()).unwrap();
        let cut = EvalOptions {
            boolean_cut: true,
            ..EvalOptions::default()
        };
        let (opt, sp) = query_answers(&outcome.program, &edb, &cut).unwrap();
        assert_eq!(orig.rows, opt.rows);
        println!(
            "audit rows={audit_rows}: {} shippable parts | original scanned {} tuples | \
             optimized scanned {} tuples, retired {} rule(s)",
            opt.len(),
            so.tuples_scanned,
            sp.tuples_scanned,
            sp.rules_retired
        );
    }
    println!("\nnote how the original's scan count tracks the audit table size");
    println!("while the optimized program's cost is independent of it.");
}
